// Package detorder flags output that depends on Go's randomized map
// iteration order. The sweep artifacts this repo produces — CSV rows,
// JSON exports, Prometheus exposition, memo keys — are diffed across
// runs and cached by content; an output that reshuffles with every
// execution poisons both comparisons and caches while remaining
// semantically "correct".
//
// Three shapes are reported:
//
//  1. An emitting call inside a range over a map: fmt.Fprintf to a
//     writer, enc.Encode, w.Write/WriteString. The bytes land in map
//     order.
//  2. A string accumulated across a map range (s += ... or s = s +
//     ...): the final value — typically a memo or cache key — differs
//     run to run.
//  3. A slice appended to inside a map range and then used (passed
//     to a call, returned, or ranged-with-emission) downstream on
//     some path with no sort.* / slices.Sort* call on it in between.
//     The append-then-sort idiom is the fix, and is recognized: a
//     sort on every path to the use keeps the analyzer quiet.
//
// Order-insensitive folds (sums, max, building another map) are not
// flagged: map iteration is fine, it is only emission in map order
// that isn't.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tradeoff/internal/analysis/dataflow"
	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/typeutil"
)

// Analyzer is the detorder check.
var Analyzer = &lint.Analyzer{
	Name: "detorder",
	Doc:  "flags map-iteration order leaking into output: emitters inside map ranges, strings built across them, and appended slices used without an intervening sort",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkBody(pass, fn.Body)
			}
		}
	}
	return nil
}

// checkBody analyzes one flow unit and recurses into function
// literals, each with its own graph.
func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	g := dataflow.New(body)
	// The CFG stores a range's guard as its X expression; map guards
	// back to their statements so the post-loop scan can recognize a
	// range over a tainted slice.
	ranges := map[ast.Node]*ast.RangeStmt{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			ranges[n.X] = n
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkBody(pass, n.Body)
			return false
		case *ast.RangeStmt:
			if isMapRange(pass, n) {
				checkMapRange(pass, g, n, ranges)
			}
		}
		return true
	})
}

func isMapRange(pass *lint.Pass, rng *ast.RangeStmt) bool {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := typeutil.Deref(t).Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one range-over-map: direct emission and
// string accumulation report immediately; outer-slice appends taint
// the slice for the post-loop scan.
func checkMapRange(pass *lint.Pass, g *dataflow.Graph, rng *ast.RangeStmt, ranges map[ast.Node]*ast.RangeStmt) {
	var tainted []types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if name, ok := emitter(pass, n); ok {
				pass.Reportf(n.Pos(), "%s inside range over %s emits in nondeterministic map order; collect the keys, sort them, then emit", name, render(rng.X))
			}
		case *ast.AssignStmt:
			checkStringAccum(pass, rng, n)
			if obj := appendTarget(pass, rng, n); obj != nil {
				tainted = append(tainted, obj)
			}
		}
		return true
	})
	for _, obj := range tainted {
		scanAfterLoop(pass, g, rng, obj, ranges)
	}
}

// emitter reports whether call writes bytes somewhere order would
// show: fmt print/fprint functions, or Write*/Encode methods.
func emitter(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return "fmt." + fn.Name(), true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		return render(call.Fun), true
	}
	return "", false
}

// checkStringAccum flags s += expr (or s = s + expr) on a string
// declared outside the loop: the concatenation order is map order.
func checkStringAccum(pass *lint.Pass, rng *ast.RangeStmt, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pos() >= rng.Pos() {
		return // declared inside the loop: dies each iteration
	}
	if b, ok := obj.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	accum := as.Tok == token.ADD_ASSIGN
	if as.Tok == token.ASSIGN && len(as.Rhs) == 1 {
		// s = s + expr
		if bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok && bin.Op == token.ADD {
			ast.Inspect(bin, func(n ast.Node) bool {
				if rid, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[rid] == obj {
					accum = true
				}
				return !accum
			})
		}
	}
	if accum {
		pass.Reportf(as.Pos(), "string %s is concatenated across a range over %s, so its value depends on map iteration order; build from sorted keys", id.Name, render(rng.X))
	}
}

// appendTarget recognizes xs = append(xs, ...) onto a slice declared
// outside the loop and returns the slice's object.
func appendTarget(pass *lint.Pass, rng *ast.RangeStmt, as *ast.AssignStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if fid, ok := call.Fun.(*ast.Ident); !ok || fid.Name != "append" {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pos() >= rng.Pos() {
		return nil
	}
	if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
		return nil
	}
	return obj
}

// scanAfterLoop walks every CFG path from the loop's follow block. On
// each path, the first order-relevant event for the tainted slice
// decides: a sort call clears the path; an order-sensitive use — call
// argument, return value, or an emitting range over it — reports.
// One report per tainted slice.
func scanAfterLoop(pass *lint.Pass, g *dataflow.Graph, rng *ast.RangeStmt, obj types.Object, ranges map[ast.Node]*ast.RangeStmt) {
	start := g.FollowBlock(rng)
	if start == nil {
		return
	}
	reported := false
	visited := map[*dataflow.Block]bool{}
	var walk func(b *dataflow.Block)
	walk = func(b *dataflow.Block) {
		if reported || visited[b] {
			return
		}
		visited[b] = true
		for _, n := range b.Nodes {
			switch event(pass, n, obj, ranges) {
			case eventSort:
				return // this path is clean
			case eventUse:
				pass.Reportf(usePos(pass, n, obj), "%s was appended to in map iteration order over %s and is used here without a sort; sort it (or iterate sorted keys) first", obj.Name(), render(rng.X))
				reported = true
				return
			}
		}
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(start)
}

type eventKind int

const (
	eventNone eventKind = iota
	eventSort
	eventUse
)

// event classifies one simple node with respect to the tainted slice.
func event(pass *lint.Pass, n ast.Node, obj types.Object, ranges map[ast.Node]*ast.RangeStmt) eventKind {
	kind := eventNone
	// A range guard node is the range's X expression: ranging over the
	// tainted slice is order-sensitive only if the body emits.
	if rng, ok := ranges[n]; ok {
		if usesObj(pass, rng.X, obj) && bodyEmits(pass, rng.Body) {
			return eventUse
		}
		return eventNone
	}
	dataflow.Scan(n, func(m ast.Node) bool {
		if kind != eventNone {
			return false
		}
		switch m := m.(type) {
		case *ast.CallExpr:
			if isSortOf(pass, m, obj) {
				kind = eventSort
				return false
			}
			if isBuiltinish(pass, m) {
				return false // len/cap/append keep the taint, no report
			}
			for _, arg := range m.Args {
				if usesObj(pass, arg, obj) {
					kind = eventUse
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				if usesObj(pass, r, obj) {
					kind = eventUse
					return false
				}
			}
		}
		return false
	})
	return kind
}

// isSortOf reports whether call is sort.*/slices.Sort* applied to obj.
func isSortOf(pass *lint.Pass, call *ast.CallExpr, obj types.Object) bool {
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg := fn.Pkg().Path()
	sortish := pkg == "sort" || (pkg == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
	if !sortish || len(call.Args) == 0 {
		return false
	}
	return usesObj(pass, call.Args[0], obj)
}

// isBuiltinish reports whether call is a builtin (len, cap, append,
// delete, ...), which never consumes iteration order.
func isBuiltinish(pass *lint.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// bodyEmits reports whether a statement body contains an emitting
// call (outside nested function literals).
func bodyEmits(pass *lint.Pass, body *ast.BlockStmt) bool {
	emits := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := emitter(pass, call); ok {
				emits = true
			}
		}
		return !emits
	})
	return emits
}

func usesObj(pass *lint.Pass, e ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// usePos pins the diagnostic to the first use of obj within n.
func usePos(pass *lint.Pass, n ast.Node, obj types.Object) token.Pos {
	pos := n.Pos()
	done := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && !done && pass.TypesInfo.Uses[id] == obj {
			pos = id.Pos()
			done = true
		}
		return !done
	})
	return pos
}

// render prints a compact expression for diagnostics.
func render(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return render(e.Fun) + "()"
	case *ast.IndexExpr:
		return render(e.X) + "[...]"
	}
	return "the map"
}
