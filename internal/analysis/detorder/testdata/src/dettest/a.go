// Fixtures for the detorder analyzer: emitters inside map ranges,
// strings accumulated across them, and appended slices used unsorted.
package dettest

import (
	"fmt"
	"io"
	"strings"
)

func emitDirect(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside range over m emits in nondeterministic map order`
	}
}

func emitBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b.WriteString inside range over m emits in nondeterministic map order`
	}
	return b.String()
}

func memoKey(opts map[string]string) string {
	key := ""
	for k, v := range opts {
		key += k + "=" + v + ";" // want `string key is concatenated across a range over opts`
	}
	return key
}

func memoKeyExplicitAdd(opts map[string]string) string {
	key := ""
	for k := range opts {
		key = key + k // want `string key is concatenated across a range over opts`
	}
	return key
}

func returnUnsorted(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	return names // want `names was appended to in map iteration order over m and is used here without a sort`
}

func passUnsorted(w io.Writer, m map[string]int) {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	emitAll(w, names) // want `names was appended to in map iteration order over m and is used here without a sort`
}

func rangeEmitUnsorted(w io.Writer, m map[string]int) {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	for _, n := range names { // want `names was appended to in map iteration order over m and is used here without a sort`
		fmt.Fprintln(w, n)
	}
}

func emitAll(w io.Writer, names []string) {
	for _, n := range names {
		fmt.Fprintln(w, n)
	}
}
