// Negative cases: map iteration used in order-insensitive ways, and
// the canonical append-then-sort idiom. Must stay quiet.
// want:none
package dettest

import (
	"fmt"
	"io"
	"sort"
)

func sortedKeysThenEmit(w io.Writer, m map[string]int) {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%s=%d\n", n, m[n])
	}
}

func sortSliceThenReturn(m map[string]float64) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

func orderInsensitiveFold(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func buildAnotherMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

func rangeWithoutEmission(m map[string]int) int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	max := 0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	return max
}

func localSliceDiesInLoop(w io.Writer, m map[string][]string, key string) {
	for k, parts := range m {
		row := append([]string{k}, parts...)
		_ = row
	}
	fmt.Fprintln(w, key)
}
