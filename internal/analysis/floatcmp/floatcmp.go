// Package floatcmp flags exact == and != comparisons between
// floating-point model quantities. The methodology's equations produce
// hit ratios, delays and miss-count ratios through chains of float64
// arithmetic (Eqs. 1–9, 11–19), where exact equality is almost always a
// latent bug: two mathematically equal delays differ in their last ulp.
//
// Allowed without complaint:
//   - comparisons where either side is the constant 0 (sentinel checks
//     such as `hr != 0` or `p.W == 0`),
//   - comparisons where both sides are compile-time constants,
//   - comparisons inside epsilon helpers themselves — functions whose
//     name contains approx, almost, near, same or eps.
//
// Everything else should route through an epsilon helper (see
// core.approxEqual) or be restructured.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"

	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/typeutil"
)

// Analyzer is the floatcmp check.
var Analyzer = &lint.Analyzer{
	Name: "floatcmp",
	Doc:  "flags exact ==/!= between float64 model quantities (Eqs. 1–19 arithmetic); compare via an epsilon helper or against a 0 sentinel instead",
	Run:  run,
}

// epsilonFunc matches the names of functions allowed to compare floats
// exactly: the epsilon helpers and their tests.
var epsilonFunc = regexp.MustCompile(`(?i)approx|almost|near|same|eps`)

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if epsilonFunc.MatchString(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				cmp, ok := n.(*ast.BinaryExpr)
				if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
					return true
				}
				if !typeutil.IsFloat(pass.TypeOf(cmp.X)) || !typeutil.IsFloat(pass.TypeOf(cmp.Y)) {
					return true
				}
				xv := constValue(pass, cmp.X)
				yv := constValue(pass, cmp.Y)
				if xv != nil && yv != nil { // both constants: compile-time decidable
					return true
				}
				if isZero(xv) || isZero(yv) { // sentinel against exactly 0
					return true
				}
				pass.Reportf(cmp.OpPos, "exact float %s comparison on model quantities; use an epsilon helper or a 0 sentinel", cmp.Op)
				return true
			})
		}
	}
	return nil
}

func constValue(pass *lint.Pass, e ast.Expr) constant.Value {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Value
	}
	return nil
}

func isZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
