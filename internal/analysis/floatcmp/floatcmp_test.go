package floatcmp_test

import (
	"testing"

	"tradeoff/internal/analysis/analysistest"
	"tradeoff/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "testdata", floatcmp.Analyzer, "floattest")
}
