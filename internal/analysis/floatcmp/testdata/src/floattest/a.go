package floattest

const tol = 1e-9

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// approxEqual is an epsilon helper: exact comparison is allowed here.
func approxEqual(a, b float64) bool {
	return abs(a-b) <= tol || a == b
}

func compare(hr, delay float64, n int) bool {
	if hr == delay { // want `exact float == comparison`
		return true
	}
	if hr != 0.95 { // want `exact float != comparison`
		return false
	}
	if delay != 0 { // 0 sentinel: allowed
		return false
	}
	if hr == 0.0 { // 0 sentinel spelled as a float literal: allowed
		return true
	}
	const a, b = 0.1, 0.2
	if a == b { // both constants: allowed
		return true
	}
	if n == 3 { // integers: allowed
		return false
	}
	return approxEqual(hr, delay)
}

func nested(xs []float64) int {
	count := 0
	for _, x := range xs {
		check := func(y float64) bool {
			return x == y // want `exact float == comparison`
		}
		if check(0.5) {
			count++
		}
	}
	return count
}

func suppressed(a, b float64) bool {
	//lint:ignore floatcmp bit-exact golden comparison is intended here
	return a == b
}
