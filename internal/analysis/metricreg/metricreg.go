// Package metricreg keeps the expvar metric surface coherent with the
// internal/service/metrics.go naming scheme. Two failure modes are
// machine-checked:
//
//  1. duplicate registration — expvar.Publish (and the NewInt/NewFloat/
//     NewMap/NewString wrappers) panic at runtime when a name is
//     registered twice; metricreg reports the second registration of
//     any constant name within a package at build time instead, and
//  2. naming drift — every constant metric name passed to a
//     registration call or to (*expvar.Map).Set must be lower
//     snake_case (`^[a-z][a-z0-9_]*$`), the scheme metrics.go
//     established (requests_total, cache_hits, latency_us_total, …);
//     camelCase, dashes and dots would fracture the /metrics document
//     into inconsistent dialects.
//
// The same two rules cover the internal/obs instruments: names passed
// to obs.NewHistogram and obs.NewCounter feed the Prometheus
// exposition (/metrics?format=prom), so they share the snake_case
// scheme, and registering the same constant name at two call sites in
// a package would fuse unrelated series into one — flagged in a
// namespace separate from expvar's (an obs histogram may legitimately
// share a name with a derived expvar key).
//
// Metrics-history series registered through (*obs.History).Register
// get the same treatment in a third namespace: Register silently
// replaces an existing sampler (that is how RegisterHistogram rebinds
// derived series), so a duplicated constant name at two call sites
// drops the first series without any runtime signal. Computed names
// (the per-endpoint series internal/service derives from routes) are
// out of scope, like every non-constant name.
package metricreg

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/typeutil"
)

// Analyzer is the metricreg check.
var Analyzer = &lint.Analyzer{
	Name: "metricreg",
	Doc:  "flags expvar and obs metric names registered more than once or diverging from the snake_case naming scheme of internal/service/metrics.go",
	Run:  run,
}

// registerFuncs are the expvar package functions that publish into the
// process-global registry and panic on duplicates.
var registerFuncs = map[string]bool{
	"Publish":   true,
	"NewInt":    true,
	"NewFloat":  true,
	"NewMap":    true,
	"NewString": true,
}

// obsRegisterFuncs are the internal/obs constructors that name an
// instrument; the name becomes a Prometheus series, so duplicate
// call-site registrations within a package fuse unrelated series.
var obsRegisterFuncs = map[string]bool{
	"NewHistogram": true,
	"NewCounter":   true,
}

// metricNameRE is the metrics.go scheme: lower snake_case, starting
// with a letter.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// isObsPkg matches the instrument package by import-path suffix, so
// the analyzer works both on the real tradeoff/internal/obs and on the
// fixture stand-in package "obs" (the same convention typeutil's
// IsNamedSuffix uses for stand-in types).
func isObsPkg(path string) bool {
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

func run(pass *lint.Pass) error {
	// Package-wide, file-order traversal keeps "first registration
	// wins, later ones are flagged" deterministic. expvar and obs
	// names live in separate namespaces: the service deliberately
	// derives expvar keys from obs histograms.
	seen := map[string]token.Pos{}
	seenObs := map[string]token.Pos{}
	seenHist := map[string]token.Pos{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := typeutil.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkgPath := fn.Pkg().Path()
			noRecv := fn.Type().(*types.Signature).Recv() == nil
			global := pkgPath == "expvar" && noRecv && registerFuncs[fn.Name()]
			mapSet := pkgPath == "expvar" && typeutil.IsNamed(recvType(fn), "expvar", "Map") && fn.Name() == "Set"
			obsReg := isObsPkg(pkgPath) && noRecv && obsRegisterFuncs[fn.Name()]
			histReg := isObsPkg(pkgPath) && typeutil.IsNamedSuffix(recvType(fn), "obs", "History") && fn.Name() == "Register"
			if !global && !mapSet && !obsReg && !histReg {
				return true
			}
			name, ok := constString(pass, call.Args[0])
			if !ok {
				return true
			}
			if !metricNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q is not snake_case; the /metrics scheme is ^[a-z][a-z0-9_]*$ (see internal/service/metrics.go)", name)
			}
			switch {
			case global:
				if first, dup := seen[name]; dup {
					pass.Reportf(call.Args[0].Pos(), "expvar metric %q registered more than once (first at %s); expvar.Publish panics on duplicates", name, pass.Fset.Position(first))
				} else {
					seen[name] = call.Args[0].Pos()
				}
			case obsReg:
				if first, dup := seenObs[name]; dup {
					pass.Reportf(call.Args[0].Pos(), "obs metric %q registered more than once (first at %s); duplicate names fuse into one Prometheus series", name, pass.Fset.Position(first))
				} else {
					seenObs[name] = call.Args[0].Pos()
				}
			case histReg:
				if first, dup := seenHist[name]; dup {
					pass.Reportf(call.Args[0].Pos(), "history series %q registered more than once (first at %s); Register silently replaces the earlier sampler", name, pass.Fset.Position(first))
				} else {
					seenHist[name] = call.Args[0].Pos()
				}
			}
			return true
		})
	}
	return nil
}

func recvType(fn *types.Func) types.Type {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	return recv.Type()
}

func constString(pass *lint.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
