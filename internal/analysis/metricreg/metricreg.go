// Package metricreg keeps the expvar metric surface coherent with the
// internal/service/metrics.go naming scheme. Two failure modes are
// machine-checked:
//
//  1. duplicate registration — expvar.Publish (and the NewInt/NewFloat/
//     NewMap/NewString wrappers) panic at runtime when a name is
//     registered twice; metricreg reports the second registration of
//     any constant name within a package at build time instead, and
//  2. naming drift — every constant metric name passed to a
//     registration call or to (*expvar.Map).Set must be lower
//     snake_case (`^[a-z][a-z0-9_]*$`), the scheme metrics.go
//     established (requests_total, cache_hits, latency_us_total, …);
//     camelCase, dashes and dots would fracture the /metrics document
//     into inconsistent dialects.
package metricreg

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/typeutil"
)

// Analyzer is the metricreg check.
var Analyzer = &lint.Analyzer{
	Name: "metricreg",
	Doc:  "flags expvar metric names registered more than once (a runtime panic) or diverging from the snake_case naming scheme of internal/service/metrics.go",
	Run:  run,
}

// registerFuncs are the expvar package functions that publish into the
// process-global registry and panic on duplicates.
var registerFuncs = map[string]bool{
	"Publish":   true,
	"NewInt":    true,
	"NewFloat":  true,
	"NewMap":    true,
	"NewString": true,
}

// metricNameRE is the metrics.go scheme: lower snake_case, starting
// with a letter.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func run(pass *lint.Pass) error {
	// Package-wide, file-order traversal keeps "first registration
	// wins, later ones are flagged" deterministic.
	seen := map[string]token.Pos{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := typeutil.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "expvar" {
				return true
			}
			global := fn.Type().(*types.Signature).Recv() == nil && registerFuncs[fn.Name()]
			mapSet := typeutil.IsNamed(recvType(fn), "expvar", "Map") && fn.Name() == "Set"
			if !global && !mapSet {
				return true
			}
			name, ok := constString(pass, call.Args[0])
			if !ok {
				return true
			}
			if !metricNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q is not snake_case; the /metrics scheme is ^[a-z][a-z0-9_]*$ (see internal/service/metrics.go)", name)
			}
			if global {
				if first, dup := seen[name]; dup {
					pass.Reportf(call.Args[0].Pos(), "expvar metric %q registered more than once (first at %s); expvar.Publish panics on duplicates", name, pass.Fset.Position(first))
				} else {
					seen[name] = call.Args[0].Pos()
				}
			}
			return true
		})
	}
	return nil
}

func recvType(fn *types.Func) types.Type {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	return recv.Type()
}

func constString(pass *lint.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
