package metricreg_test

import (
	"testing"

	"tradeoff/internal/analysis/analysistest"
	"tradeoff/internal/analysis/metricreg"
)

func TestMetricreg(t *testing.T) {
	analysistest.Run(t, "testdata", metricreg.Analyzer, "metrictest", "obstest")
}
