// Package obs is a fixture stand-in for tradeoff/internal/obs: the
// analyzer matches it by import-path suffix (see isObsPkg), so the
// signatures matter and the bodies do not.
package obs

// Histogram stands in for obs.Histogram.
type Histogram struct{ name string }

// NewHistogram stands in for obs.NewHistogram.
func NewHistogram(name string) *Histogram { return &Histogram{name: name} }

// Observe is here so fixtures can exercise a method call that must
// NOT count as a registration.
func (h *Histogram) Observe(v int64) {}

// Counter stands in for obs.Counter.
type Counter struct{ name string }

// NewCounter stands in for obs.NewCounter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// History stands in for obs.History, the metrics-history store.
type History struct{}

// Register stands in for (*obs.History).Register — the registration
// point the analyzer checks.
func (h *History) Register(name string, fn func() float64) {}

// RegisterCounter is here so fixtures can exercise a History method
// that takes no name and must NOT count as a registration.
func (h *History) RegisterCounter(c *Counter) {}
