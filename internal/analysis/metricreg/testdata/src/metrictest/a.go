package metrictest

import "expvar"

var (
	hits   = expvar.NewInt("cache_hits")
	misses = expvar.NewInt("CacheMisses") // want `metric name "CacheMisses" is not snake_case`
	dup    = expvar.NewInt("cache_hits")  // want `expvar metric "cache_hits" registered more than once`
)

func publish() {
	expvar.Publish("in_flight", new(expvar.Int))
	expvar.Publish("in_flight", new(expvar.Int))  // want `expvar metric "in_flight" registered more than once`
	expvar.Publish("latency-us", new(expvar.Int)) // want `metric name "latency-us" is not snake_case`

	m := new(expvar.Map).Init()
	m.Set("requests_total", new(expvar.Int))
	m.Set("requests_total", new(expvar.Int)) // Map.Set replaces, no panic: fine
	m.Set("requests.total", new(expvar.Int)) // want `metric name "requests.total" is not snake_case`

	name := dynamicName()
	expvar.Publish(name, new(expvar.Int)) // non-constant: out of scope
}

func dynamicName() string { return "x" }

func suppressed() {
	//lint:ignore metricreg legacy dashboard consumes this exact name
	expvar.Publish("Legacy-Name", new(expvar.Int))
}

var _, _, _ = hits, misses, dup
