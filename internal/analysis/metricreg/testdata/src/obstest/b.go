package obstest

// want:none

import "obs"

// A clean registration surface: unique snake_case names across every
// registration kind, derived series built from computed names, and
// method calls that take no name. Nothing here may be flagged.

var (
	waitHist  = obs.NewHistogram("queue_wait_duration")
	flights   = obs.NewCounter("shared_flights")
	histStore = &obs.History{}
)

func wire(routes []string) {
	histStore.Register("goroutines", func() float64 { return 0 })
	histStore.Register("heap_bytes", func() float64 { return 0 })
	histStore.RegisterCounter(flights)
	for _, route := range routes {
		histStore.Register("endpoint_"+route+"_p99_ns", func() float64 { return 0 })
	}
	waitHist.Observe(1)
}
