package obstest

import (
	"expvar"

	"obs"
)

var (
	evalHist  = obs.NewHistogram("engine_eval_duration")
	queueHist = obs.NewHistogram("QueueWait")            // want `metric name "QueueWait" is not snake_case`
	dupHist   = obs.NewHistogram("engine_eval_duration") // want `obs metric "engine_eval_duration" registered more than once`
	hits      = obs.NewCounter("memo_hits")
	dashes    = obs.NewCounter("memo-hits") // want `metric name "memo-hits" is not snake_case`
	dupKind   = obs.NewCounter("memo_hits") // want `obs metric "memo_hits" registered more than once`
)

// The expvar and obs namespaces are separate: deriving an expvar key
// from an obs histogram's name is the service's documented pattern.
var shared = expvar.NewInt("engine_eval_duration")

func dynamic(name string) {
	obs.NewHistogram(name) // non-constant: out of scope
	evalHist.Observe(1)    // method call, not a registration
}

func historySeries(h *obs.History, route string) {
	h.Register("requests_total", func() float64 { return 0 })
	h.Register("HeapBytes", func() float64 { return 0 })      // want `metric name "HeapBytes" is not snake_case`
	h.Register("requests_total", func() float64 { return 0 }) // want `history series "requests_total" registered more than once`
	// History names are a namespace of their own: sharing a name with
	// an obs instrument or an expvar key is the documented pattern.
	h.Register("memo_hits", func() float64 { return 0 })
	h.Register("endpoint_"+route, func() float64 { return 0 }) // computed: out of scope
	h.RegisterCounter(hits)                                    // no name argument, not a registration
}

func suppressed() {
	//lint:ignore metricreg exercising the suppression path
	obs.NewCounter("Legacy-Counter")
}

var _, _, _, _, _, _ = evalHist, queueHist, dupHist, dashes, dupKind, shared
