package errtest

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

func fail() error                    { return nil }
func failPair() (int, error)         { return 0, nil }
func ok() int                        { return 0 }
func write(w io.Writer) (int, error) { return w.Write(nil) }

func drops(w io.Writer) {
	fail()                 // want `fail returns an error that is discarded`
	failPair()             // want `failPair returns an error that is discarded`
	fmt.Fprintf(w, "x")    // want `fmt.Fprintf returns an error that is discarded`
	io.WriteString(w, "x") // want `io.WriteString returns an error that is discarded`
	write(w)               // want `write returns an error that is discarded`
	f, _ := os.Open("x")
	f.Close() // want `f.Close returns an error that is discarded`
}

func allowed(bw *bufio.Writer) {
	ok()
	_ = fail()
	_, _ = failPair()
	if err := fail(); err != nil {
		return
	}
	fmt.Println("stdout is fine")
	fmt.Fprintln(os.Stderr, "stderr is fine")
	var b strings.Builder
	b.WriteString("in-memory builders never fail")
	fmt.Fprintf(&b, "x")
	var buf bytes.Buffer
	buf.WriteByte('x')
	fmt.Fprintf(&buf, "x")
	bw.WriteString("sticky error surfaces at Flush")
	fmt.Fprintf(bw, "x")
}

func flushMustBeChecked(bw *bufio.Writer) {
	bw.Flush() // want `bw.Flush returns an error that is discarded`
}

func suppressed() {
	//lint:ignore errdrop best-effort cleanup on shutdown
	fail()
}
