// Package errdrop flags call statements that silently discard an error
// result. ROADMAP's production-service goal means every error in
// internal/ and cmd/ is either handled or discarded *visibly* with an
// explicit `_ =` assignment — an ExprStmt that drops one is review
// noise today and a swallowed failure in production.
//
// Calls that cannot fail are not flagged:
//   - fmt.Print/Printf/Println (process stdout),
//   - fmt.Fprint*/io.WriteString to os.Stdout, os.Stderr, a
//     strings.Builder, bytes.Buffer or bufio.Writer,
//   - methods on strings.Builder and bytes.Buffer (their error results
//     exist only to satisfy io interfaces and are documented nil),
//   - Write* methods on bufio.Writer, whose sticky error surfaces at
//     Flush — Flush itself is still flagged.
//
// Deferred calls (`defer f.Close()`) are deliberately out of scope.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/typeutil"
)

// Analyzer is the errdrop check.
var Analyzer = &lint.Analyzer{
	Name: "errdrop",
	Doc:  "flags statements that discard a returned error; handle it or discard it visibly with `_ =`",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
			if !ok || !typeutil.ReturnsError(sig) {
				return true
			}
			if exempt(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "%s returns an error that is discarded; handle it or assign to _ explicitly", calleeName(pass, call))
			return true
		})
	}
	return nil
}

// exempt reports whether the call's dropped error is documented to be
// nil or otherwise out of errdrop's charter.
func exempt(pass *lint.Pass, call *ast.CallExpr) bool {
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false // calls through function values stay flagged
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if neverFailingWriter(recv.Type()) {
			return true
		}
		if typeutil.IsNamed(recv.Type(), "bufio", "Writer") && strings.HasPrefix(fn.Name(), "Write") {
			return true // sticky error; Flush is where it must be checked
		}
		return false
	}
	switch {
	case pkg == "fmt" && (fn.Name() == "Print" || fn.Name() == "Printf" || fn.Name() == "Println"):
		return true
	case pkg == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"),
		pkg == "io" && fn.Name() == "WriteString":
		return len(call.Args) > 0 && safeWriterArg(pass, call.Args[0])
	}
	return false
}

// safeWriterArg reports whether the io.Writer argument never fails:
// process-standard streams and in-memory buffers.
func safeWriterArg(pass *lint.Pass, arg ast.Expr) bool {
	if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok {
		if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	t := pass.TypeOf(arg)
	return neverFailingWriter(t) || typeutil.IsNamed(t, "bufio", "Writer")
}

func neverFailingWriter(t types.Type) bool {
	return typeutil.IsNamed(t, "strings", "Builder") || typeutil.IsNamed(t, "bytes", "Buffer")
}

func calleeName(pass *lint.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
