package errdrop_test

import (
	"testing"

	"tradeoff/internal/analysis/analysistest"
	"tradeoff/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, "testdata", errdrop.Analyzer, "errtest")
}
