package paramtest

import (
	"sweep"
)

func useOpt(c sweep.OptimizeConfig) {}

func levelDomains() {
	c := sweep.Config{
		CacheKB: []int{8}, LineBytes: []int{32},
		Levels: []sweep.LevelAxes{
			{
				CacheKB:   []int{0, 64}, // want `LevelAxes.CacheKB\[0\] = 0 outside its domain \(0, \+inf\)`
				LineBytes: []int{-32},   // want `LevelAxes.LineBytes\[0\] = -32 outside its domain \(0, \+inf\)` `Levels\[0\] line sizes top out at -32, below the smallest line above \(32\)`
				Assoc:     -1,           // want `LevelAxes.Assoc = -1 outside its domain \[0, \+inf\)`
				LatencyNS: 0,            // want `LevelAxes.LatencyNS = 0 outside its domain \(0, \+inf\)`
			},
		},
	}
	useCfg(c)
}

func shrinkingLines() {
	c := sweep.Config{
		CacheKB: []int{8}, LineBytes: []int{32, 64},
		Levels: []sweep.LevelAxes{
			{CacheKB: []int{64}, LineBytes: []int{64, 128}, LatencyNS: 90},
			{CacheKB: []int{256}, LineBytes: []int{16, 32}, LatencyNS: 180}, // want `Levels\[1\] line sizes top out at 32, below the smallest line above \(64\)`
		},
	}
	useCfg(c)
}

func optimizeDomains() {
	o := sweep.OptimizeConfig{
		Config: sweep.Config{CacheKB: []int{8}, LineBytes: []int{32}},

		AreaBudget:  0,      // want `OptimizeConfig.AreaBudget = 0 outside its domain \(0, \+inf\)`
		PowerBudget: -5,     // want `OptimizeConfig.PowerBudget = -5 outside its domain \[0, \+inf\)`
		MaxLevels:   -1,     // want `OptimizeConfig.MaxLevels = -1 outside its domain \[0, \+inf\)`
		LineMode:    "best", // want `OptimizeConfig.LineMode = "best", want one of "enumerate", "optimal" \(or empty for the default\)`
	}
	useOpt(o)
}

func optimizeFieldWrites(o sweep.OptimizeConfig) {
	o.AreaBudget = -1e6 // want `OptimizeConfig.AreaBudget = -1e\+06 outside its domain \(0, \+inf\)`
	o.LineMode = "optimal"
	useOpt(o)
}
