package paramtest

import (
	"core"
	"model"
	"mrc"
	"simjob"
	"sweep"
)

func use(p core.Params)     {}
func useCfg(c sweep.Config) {}
func useGrid(g simjob.Grid) {}
func hitRatio() float64     { return 0.95 }

func constantViolations() {
	p := core.Params{
		E:     1e6,
		Alpha: 1.5, // want `Params.Alpha = 1.5 outside its domain \[0, 1\]`
		BetaM: 0.5, // want `Params.BetaM = 0.5 outside its domain \[1, \+inf\)`
		D:     0,   // want `Params.D = 0 outside its domain \(0, \+inf\)`
		L:     32,
	}
	if err := p.Validate(); err != nil {
		return
	}
	use(p)
}

func crossFieldViolations() {
	p := core.Params{ // want `L = 8 smaller than D = 16`
		E: 1e6, Alpha: 0.5, Phi: 0.5, D: 16, L: 8, BetaM: 4,
	}
	q := core.Params{ // want `φ = 16 above the full-stall ceiling L/D = 8`
		E: 1e6, Alpha: 0.5, Phi: 16, D: 4, L: 32, BetaM: 4,
	}
	if p.Validate() == nil && q.Validate() == nil {
		use(p)
	}
}

func fieldWrites(p core.Params) {
	p.Alpha = -0.25 // want `Params.Alpha = -0.25 outside its domain \[0, 1\]`
	p.BetaM = 10    // in domain: fine
	p.Phi = p.L / p.D
	use(p)
}

func unvalidated(e float64) core.Params {
	return core.Params{E: e, Alpha: 0.5, D: 4, L: 32, BetaM: 10} // want `core.Params built in unvalidated with no reachable domain check`
}

func validatedViaHelper(e float64) core.Params {
	p := core.Params{E: e, Alpha: 0.5, D: 4, L: 32, BetaM: 10}
	if !validFraction(hitRatio()) {
		return core.Params{}
	}
	return p
}

func validFraction(v float64) bool { return v > 0 && v < 1 }

func zeroValueIsFine() core.Params {
	return core.Params{} // zero literal: error-path value, not a design point
}

func configDomains() {
	c := sweep.Config{
		LatencyNS: -60, // want `Config.LatencyNS = -60 outside its domain \[0, \+inf\)`
		AddrBits:  256, // want `Config.AddrBits = 256 outside its domain \[0, 128\]`
		CPUNS:     0,   // zero selects the default: fine
		MRCRate:   1.5, // want `Config.MRCRate = 1.5 outside its domain \[0, 1\]`
		MRCBudget: -1,  // want `Config.MRCBudget = -1 outside its domain \[0, \+inf\)`
	}
	useCfg(c)
}

func useSampler(s mrc.SamplerConfig) {}
func useSpec(s mrc.Spec)             {}

func mrcDomains() {
	s := mrc.SamplerConfig{
		Rate:   0, // want `SamplerConfig.Rate = 0 outside its domain \(0, 1\]`
		Budget: 0, // want `SamplerConfig.Budget = 0 outside its domain \[1, \+inf\)`
	}
	s.Rate = 2 // want `SamplerConfig.Rate = 2 outside its domain \(0, 1\]`
	useSampler(s)
	useSampler(mrc.SamplerConfig{Rate: 0.1, Budget: 8192}) // in domain: fine
	useSpec(mrc.Spec{
		Workload: "ear",
		Refs:     20000,
		LineSize: -64, // want `Spec.LineSize = -64 outside its domain \(0, \+inf\)`
	})
}

func gridDomains() {
	g := simjob.Grid{
		Refs:  -1, // want `Grid.Refs = -1 outside its domain \[0, \+inf\)`
		MSHRs: -2, // want `Grid.MSHRs = -2 outside its domain \[0, \+inf\)`
		Q:     0,  // zero selects the default: fine
		CacheKB: []int{
			8,
			0, // want `Grid.CacheKB\[1\] = 0 outside its domain \(0, \+inf\)`
		},
		BetaM:      []int64{0, 4}, // want `Grid.BetaM\[0\] = 0 outside its domain \[1, \+inf\)`
		WbufDepths: []int{0, 4},   // depth 0 means no buffer: fine
	}
	g.Assoc = -1 // want `Grid.Assoc = -1 outside its domain \[0, \+inf\)`
	useGrid(g)
}

func positionalLiteral() {
	// Unkeyed literal: fields resolve by declaration order.
	p := core.Params{1e6, 0, 0, 2.0, 1, 4, 32, 10} // want `Params.Alpha = 2 outside its domain \[0, 1\]`
	if p.Validate() == nil {
		use(p)
	}
}

func useModelSpec(s model.Spec) {}
func useReport(r model.Report)  {}

func modeEnums() {
	c := sweep.Config{
		SimRefs: 20000,
		Mode:    "approximate", // want `Config.Mode = "approximate", want one of "exact", "model", "auto" \(or empty for the default\)`
	}
	c.Mode = "model" // in the enum: fine
	c.Mode = "Model" // want `Config.Mode = "Model", want one of "exact", "model", "auto" \(or empty for the default\)`
	useCfg(c)

	g := simjob.Grid{
		Mode:      "auto",
		WriteMiss: "write-back", // want `Grid.WriteMiss = "write-back", want one of "allocate", "around" \(or empty for the default\)`
	}
	g.Mode = "sim" // want `Grid.Mode = "sim", want one of "exact", "model", "auto" \(or empty for the default\)`
	useGrid(g)
}

func modelDomains() {
	useModelSpec(model.Spec{
		Workload: "nasa7",
		Refs:     0,  // want `Spec.Refs = 0 outside its domain \(0, \+inf\)`
		LineSize: 32, // fine
	})
	useReport(model.Report{
		Workload: "nasa7",
		MaxAbs:   1.5,   // want `Report.MaxAbs = 1.5 outside its domain \[0, 1\]`
		MeanAbs:  -0.01, // want `Report.MeanAbs = -0.01 outside its domain \[0, 1\]`
		Budget:   0,     // want `Report.Budget = 0 outside its domain \(0, 1\]`
	})
	useReport(model.Report{Workload: "zipf", MaxAbs: 0.02, MeanAbs: 0.01, Budget: 0.04, Within: true})
}

func suppressed() core.Params {
	//lint:ignore paramdomain synthetic stress point exercised by a fuzzer
	return core.Params{E: 1, Alpha: 0.5, D: 4, L: 32, BetaM: 10}
}
