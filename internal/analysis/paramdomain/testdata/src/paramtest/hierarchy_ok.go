// want:none
package paramtest

import (
	"sweep"
)

// A well-formed hierarchy search: per-level domains respected, lines
// non-shrinking down the hierarchy (the middle level inherits the
// line above), and a positive area budget with the optional knobs at
// their defaults.
func wellFormedHierarchy() {
	o := sweep.OptimizeConfig{
		Config: sweep.Config{
			CacheKB: []int{4, 8}, LineBytes: []int{16, 32}, BusBits: []int{64},
			LatencyNS: 360, TransferNS: 60, CPUNS: 30,
			Levels: []sweep.LevelAxes{
				{CacheKB: []int{32, 64}, LatencyNS: 90},
				{CacheKB: []int{256}, LineBytes: []int{32, 64}, Assoc: 8, LatencyNS: 180},
			},
		},
		AreaBudget: 2e7,
		MaxLevels:  3,
		LineMode:   "enumerate",
	}
	useOpt(o)

	// A partially dynamic level: no constant lines to fold, so the
	// monotonicity rule stays silent rather than guessing.
	lines := []int{64}
	c := sweep.Config{
		CacheKB: []int{8}, LineBytes: []int{32},
		Levels: []sweep.LevelAxes{{CacheKB: []int{64}, LineBytes: lines, LatencyNS: 90}},
	}
	useCfg(c)
}
