// Package simjob is a fixture stand-in for tradeoff/internal/simjob.
package simjob

type Grid struct {
	Programs []string
	Refs     int
	Seed     uint64

	Features   []string
	CacheKB    []int
	LineBytes  []int
	BusBytes   []int
	BetaM      []int64
	WbufDepths []int

	Assoc     int
	WriteMiss string
	Mode      string
	Pipelined bool
	Q         int64
	MSHRs     int

	Warm bool
}
