// Package mrc is a fixture stand-in for tradeoff/internal/mrc.
package mrc

type SamplerConfig struct {
	Rate   float64
	Budget int
}

type Spec struct {
	Workload string
	Seed     uint64
	Refs     int
	LineSize int
	Sampled  bool
	Sampler  SamplerConfig
}
