// Package sweep is a fixture stand-in for tradeoff/internal/sweep.
package sweep

type Config struct {
	CacheKB    []int
	LineBytes  []int
	BusBits    []int
	Assoc      int
	LatencyNS  float64
	TransferNS float64
	CPUNS      float64
	AddrBits   int
	CtrlPins   int
	SimRefs    int
	MRCRate    float64
	MRCBudget  int
	HitSource  string
	Mode       string
	Levels     []LevelAxes
}

type LevelAxes struct {
	CacheKB   []int
	LineBytes []int
	Assoc     int
	LatencyNS float64
}

type OptimizeConfig struct {
	Config

	AreaBudget  float64
	PowerBudget float64
	MaxLevels   int
	LineMode    string
}
