// Package core is a fixture stand-in for tradeoff/internal/core: just
// enough of Params and its Validate method for paramdomain to resolve.
package core

import "fmt"

type Params struct {
	E     float64
	R     float64
	W     float64
	Alpha float64
	Phi   float64
	D     float64
	L     float64
	BetaM float64
}

func (p Params) Validate() error {
	if p.Alpha < 0 || p.Alpha > 1 {
		return fmt.Errorf("alpha")
	}
	return nil
}
