// Package model is a fixture stand-in for tradeoff/internal/model.
package model

type Spec struct {
	Workload string
	Seed     uint64
	Refs     int
	LineSize int
}

type Report struct {
	Workload string
	LineSize int
	Refs     int
	Points   int
	MaxAbs   float64
	MeanAbs  float64
	MaxAssoc float64
	Budget   float64
	Within   bool
}
