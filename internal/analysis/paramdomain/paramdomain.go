// Package paramdomain enforces the paper's parameter domains at
// construction sites. Eqs. (1)–(9) only hold for α ∈ [0, 1], βm ≥ 1,
// L ≥ D > 0, φ ≥ 0 and positive instruction/traffic counts; a
// core.Params (or sweep.Config / simjob.Grid / service profile) built
// outside those domains produces numbers that look plausible and mean
// nothing.
//
// Two kinds of findings:
//
//  1. a composite literal or field write whose *constant* value lies
//     outside the field's documented domain (α = 1.5, βm = 0, L < D,
//     φ > L/D where all three are constants) — including constant
//     entries of a slice-valued axis field like simjob.Grid.BetaM — and
//  2. a function that builds a non-empty core.Params composite literal
//     but contains no reachable domain check — no Params.Validate()
//     call and no call to a validation helper (a callee whose name
//     contains "valid") — so runtime values bypass the domain entirely.
//
// Constant checks run on every struct in the rules table; the
// Validate-reachability rule applies only to core.Params, the type
// whose Validate method is the model's single domain authority.
package paramdomain

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"strings"

	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/typeutil"
)

// Analyzer is the paramdomain check.
var Analyzer = &lint.Analyzer{
	Name: "paramdomain",
	Doc:  "flags core.Params/sweep.Config/sweep.LevelAxes/sweep.OptimizeConfig/simjob.Grid/mrc.SamplerConfig/model.Spec constructions whose constant fields violate the paper's parameter domains (α ∈ [0,1], βm ≥ 1, L ≥ D > 0, sampling rate ∈ (0,1], mode ∈ {exact, model, auto}, area_budget > 0, hierarchy lines non-shrinking, …) and core.Params built without a reachable Validate() call",
	Run:  run,
}

// A domain is one field's allowed interval. NaN bounds are open ends.
type domain struct {
	min, max         float64
	minExcl, maxExcl bool
}

func (d domain) contains(v float64) bool {
	if math.IsNaN(v) {
		return false
	}
	if !math.IsNaN(d.min) {
		if d.minExcl && v <= d.min {
			return false
		}
		if v < d.min {
			return false
		}
	}
	if !math.IsNaN(d.max) {
		if d.maxExcl && v >= d.max {
			return false
		}
		if v > d.max {
			return false
		}
	}
	return true
}

func (d domain) String() string {
	lo, hi := "(-inf", "+inf)"
	if !math.IsNaN(d.min) {
		if d.minExcl {
			lo = fmt.Sprintf("(%g", d.min)
		} else {
			lo = fmt.Sprintf("[%g", d.min)
		}
	}
	if !math.IsNaN(d.max) {
		if d.maxExcl {
			hi = fmt.Sprintf("%g)", d.max)
		} else {
			hi = fmt.Sprintf("%g]", d.max)
		}
	}
	return lo + ", " + hi
}

var nan = math.NaN()

func atLeast(v float64) domain       { return domain{min: v, max: nan} }
func positive() domain               { return domain{min: 0, max: nan, minExcl: true} }
func interval(lo, hi float64) domain { return domain{min: lo, max: hi} }

// ruledStruct describes one struct whose fields carry domains.
// pkgElem matches both the real import path's last element and the
// short analysistest fixture path.
type ruledStruct struct {
	pkgElem, name string
	fields        map[string]domain
	// elems gives the domain each element of a slice-valued field must
	// satisfy, checked for constant entries of an inline []T literal.
	elems map[string]domain
	// enums gives the allowed constant values of a string-valued field
	// ("" always means "use the default" and must be listed explicitly
	// when it is legal).
	enums map[string][]string
	// needsValidate marks the type whose construction requires a
	// reachable Validate()/domain-check call in the same function.
	needsValidate bool
}

// modeEnum is the sweep/stall pricing-mode knob shared by
// sweep.Config and simjob.Grid ("" selects exact).
var modeEnum = []string{"", "exact", "model", "auto"}

// rules encodes Table 1's domains (core.Params), the sweep engine's
// config domain (zero selects a default, so only negatives are
// constant-wrong there), the stall grid's axes, and the service's
// application profile.
var rules = []*ruledStruct{
	{
		pkgElem: "core", name: "Params", needsValidate: true,
		fields: map[string]domain{
			"E":     positive(),
			"R":     atLeast(0),
			"W":     atLeast(0),
			"Alpha": interval(0, 1),
			"Phi":   atLeast(0),
			"D":     positive(),
			"L":     positive(),
			"BetaM": atLeast(1),
		},
	},
	{
		pkgElem: "sweep", name: "Config",
		fields: map[string]domain{
			"LatencyNS":  atLeast(0),
			"TransferNS": atLeast(0),
			"CPUNS":      atLeast(0),
			"Assoc":      atLeast(0),
			"AddrBits":   interval(0, 128),
			"CtrlPins":   atLeast(0),
			"SimRefs":    atLeast(0),
			"MRCRate":    interval(0, 1),
			"MRCBudget":  atLeast(0),
		},
		enums: map[string][]string{"Mode": modeEnum},
	},
	{
		// One deeper hierarchy level's axes: sizes and lines enumerate
		// physical caches, latency is a required absolute time (zero is
		// not "default" here — SetDefaults only fills Assoc), and Assoc 0
		// inherits the top level's.
		pkgElem: "sweep", name: "LevelAxes",
		fields: map[string]domain{
			"Assoc":     atLeast(0),
			"LatencyNS": positive(),
		},
		elems: map[string]domain{
			"CacheKB":   positive(),
			"LineBytes": positive(),
		},
	},
	{
		// A cost-constrained search: the area budget is the constraint
		// that makes the search meaningful (required > 0); power budget
		// and depth cap are optional (zero = unconstrained/default).
		pkgElem: "sweep", name: "OptimizeConfig",
		fields: map[string]domain{
			"AreaBudget":  positive(),
			"PowerBudget": atLeast(0),
			"MaxLevels":   atLeast(0),
		},
		enums: map[string][]string{"LineMode": {"", "enumerate", "optimal"}},
	},
	{
		// The stall grid's scalar knobs reject negatives (zero selects a
		// default), and its axis slices enumerate physical design points:
		// sizes and widths must be positive, βm ≥ 1 (Table 1), and a
		// write buffer may only have a non-negative depth (0 = none).
		pkgElem: "simjob", name: "Grid",
		fields: map[string]domain{
			"Refs":  atLeast(0),
			"Assoc": atLeast(0),
			"MSHRs": atLeast(0),
			"Q":     atLeast(0),
		},
		elems: map[string]domain{
			"CacheKB":    positive(),
			"LineBytes":  positive(),
			"BusBytes":   positive(),
			"BetaM":      atLeast(1),
			"WbufDepths": atLeast(0),
		},
		enums: map[string][]string{
			"Mode":      modeEnum,
			"WriteMiss": {"", "allocate", "around"},
		},
	},
	{
		pkgElem: "service", name: "ProfileRequest",
		fields: map[string]domain{
			"E": positive(),
			"R": atLeast(0),
			"W": atLeast(0),
		},
	},
	{
		// SHARDS sampler: a sampling rate must select a non-empty subset
		// (rate ∈ (0, 1]) and the eviction heap needs room for at least
		// one tracked block.
		pkgElem: "mrc", name: "SamplerConfig",
		fields: map[string]domain{
			"Rate":   {min: 0, max: 1, minExcl: true},
			"Budget": atLeast(1),
		},
	},
	{
		// An MRC profiling spec: line size must be a positive power of
		// two (the power-of-two half is runtime-checked by Validate) and
		// a pass needs at least one reference.
		pkgElem: "mrc", name: "Spec",
		fields: map[string]domain{
			"LineSize": positive(),
			"Refs":     positive(),
		},
	},
	{
		// An analytic-model curve spec: same shape as mrc.Spec, same
		// domains.
		pkgElem: "model", name: "Spec",
		fields: map[string]domain{
			"LineSize": positive(),
			"Refs":     positive(),
		},
	},
	{
		// A cross-validation report: hit-ratio errors and the committed
		// error bound are fractions of a ratio in [0, 1]; a budget of 0
		// (or above 1) could never be met (or never fail) and marks a
		// hand-built report as bogus.
		pkgElem: "model", name: "Report",
		fields: map[string]domain{
			"MaxAbs":  interval(0, 1),
			"MeanAbs": interval(0, 1),
			"Budget":  {min: 0, max: 1, minExcl: true},
		},
	},
}

func ruleFor(t types.Type) *ruledStruct {
	for _, r := range rules {
		if typeutil.IsNamedSuffix(t, r.pkgElem, r.name) {
			return r
		}
	}
	return nil
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkLiteral(pass, n)
			case *ast.AssignStmt:
				checkFieldWrites(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkValidateReachable(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkLiteral verifies every constant field of a ruled composite
// literal, then the cross-field constraints L ≥ D and φ ≤ L/D when
// enough fields are constant to decide them.
func checkLiteral(pass *lint.Pass, lit *ast.CompositeLit) {
	rule := ruleFor(pass.TypeOf(lit))
	if rule == nil || len(lit.Elts) == 0 {
		return
	}
	strct, ok := typeutil.Deref(types.Unalias(pass.TypeOf(lit))).Underlying().(*types.Struct)
	if !ok {
		return
	}
	consts := map[string]float64{}
	exprs := map[string]ast.Expr{}
	for i, elt := range lit.Elts {
		name, value := "", ast.Expr(nil)
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				name, value = id.Name, kv.Value
			}
		} else if i < strct.NumFields() {
			name, value = strct.Field(i).Name(), elt
		}
		if name == "" || value == nil {
			continue
		}
		exprs[name] = value
		if d, ruled := rule.elems[name]; ruled {
			checkSliceElems(pass, rule.name, name, d, value)
		}
		if allowed, ruled := rule.enums[name]; ruled {
			checkEnum(pass, rule.name, name, allowed, value)
		}
		v, isConst := constFloat(pass, value)
		if !isConst {
			continue
		}
		consts[name] = v
		if d, ruled := rule.fields[name]; ruled && !d.contains(v) {
			pass.Reportf(value.Pos(), "%s.%s = %g outside its domain %s", rule.name, name, v, d)
		}
	}
	if rule.name == "Params" {
		checkParamsCross(pass, lit.Pos(), consts)
	}
	if rule.pkgElem == "sweep" && rule.name == "Config" {
		checkLevelsMonotone(pass, exprs)
	}
}

// checkLevelsMonotone enforces the static half of the hierarchy line
// rule L_{i+1} ≥ L_i: down a sweep.Config's Levels, some ascending
// line-size choice must exist. With constant entries the greedy check
// is exact — carry the smallest line admissible so far; a level whose
// largest constant line is below it can never satisfy monotonicity,
// so every combination it contributes would be skipped and the level
// is dead configuration.
func checkLevelsMonotone(pass *lint.Pass, exprs map[string]ast.Expr) {
	levelsLit, ok := ast.Unparen(exprs["Levels"]).(*ast.CompositeLit)
	if !ok {
		return
	}
	cur, haveCur := minConst(pass, exprs["LineBytes"])
	for i, elt := range levelsLit.Elts {
		lvl, ok := ast.Unparen(elt).(*ast.CompositeLit)
		if !ok {
			continue
		}
		var lines ast.Expr
		for _, le := range lvl.Elts {
			if kv, ok := le.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "LineBytes" {
					lines = kv.Value
				}
			}
		}
		if lines == nil {
			continue // inherits the line above: keeps the running minimum
		}
		smallest, ok := minConst(pass, lines)
		if !ok {
			continue
		}
		if largest, ok := maxConst(pass, lines); ok && haveCur && largest < cur {
			pass.Reportf(lines.Pos(), "Levels[%d] line sizes top out at %g, below the smallest line above (%g); lines must not shrink down the hierarchy", i, largest, cur)
			continue
		}
		// The smallest admissible candidate at this level.
		best, haveBest := math.Inf(1), false
		for _, v := range constSliceVals(pass, lines) {
			if (!haveCur || v >= cur) && v < best {
				best, haveBest = v, true
			}
		}
		if haveBest {
			cur, haveCur = best, true
		} else {
			cur, haveCur = smallest, true // partially constant: stay conservative
		}
	}
}

// constSliceVals returns the constant numeric entries of an inline
// slice literal (keyed entries skipped, like checkSliceElems).
func constSliceVals(pass *lint.Pass, e ast.Expr) []float64 {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return nil
	}
	var vals []float64
	for _, elt := range lit.Elts {
		if _, keyed := elt.(*ast.KeyValueExpr); keyed {
			continue
		}
		if v, isConst := constFloat(pass, elt); isConst {
			vals = append(vals, v)
		}
	}
	return vals
}

// minConst and maxConst fold an inline slice literal's constant
// entries; ok is false when none are constant (or e is nil).
func minConst(pass *lint.Pass, e ast.Expr) (float64, bool) {
	vals := constSliceVals(pass, e)
	if len(vals) == 0 {
		return 0, false
	}
	m := vals[0]
	for _, v := range vals[1:] {
		m = math.Min(m, v)
	}
	return m, true
}

func maxConst(pass *lint.Pass, e ast.Expr) (float64, bool) {
	vals := constSliceVals(pass, e)
	if len(vals) == 0 {
		return 0, false
	}
	m := vals[0]
	for _, v := range vals[1:] {
		m = math.Max(m, v)
	}
	return m, true
}

// checkSliceElems verifies constant entries of an inline slice literal
// against the field's per-element domain, e.g. BetaM: []int64{0, 4}.
// Keyed entries ({2: 5}) are rare enough in axis literals to skip.
func checkSliceElems(pass *lint.Pass, structName, fieldName string, d domain, value ast.Expr) {
	lit, ok := ast.Unparen(value).(*ast.CompositeLit)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if _, keyed := elt.(*ast.KeyValueExpr); keyed {
			continue
		}
		if v, isConst := constFloat(pass, elt); isConst && !d.contains(v) {
			pass.Reportf(elt.Pos(), "%s.%s[%d] = %g outside its domain %s", structName, fieldName, i, v, d)
		}
	}
}

// checkParamsCross enforces L ≥ D and φ ≤ L/D (Table 2's full-stall
// ceiling) when the participating fields are all compile-time
// constants in one literal.
func checkParamsCross(pass *lint.Pass, pos token.Pos, consts map[string]float64) {
	l, haveL := consts["L"]
	d, haveD := consts["D"]
	if haveL && haveD && d > 0 && l < d {
		pass.Reportf(pos, "Params has L = %g smaller than D = %g; a line is fetched in whole bus transfers, so L ≥ D", l, d)
	}
	if phi, havePhi := consts["Phi"]; havePhi && haveL && haveD && d > 0 && l >= d && phi > l/d {
		pass.Reportf(pos, "Params has φ = %g above the full-stall ceiling L/D = %g (Table 2)", phi, l/d)
	}
}

// checkFieldWrites verifies constant assignments to ruled fields,
// e.g. p.Alpha = 1.5.
func checkFieldWrites(pass *lint.Pass, assign *ast.AssignStmt) {
	if assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		rule := ruleFor(pass.TypeOf(sel.X))
		if rule == nil {
			continue
		}
		if allowed, ruled := rule.enums[sel.Sel.Name]; ruled {
			checkEnum(pass, rule.name, sel.Sel.Name, allowed, assign.Rhs[i])
		}
		d, ruled := rule.fields[sel.Sel.Name]
		if !ruled {
			continue
		}
		if v, isConst := constFloat(pass, assign.Rhs[i]); isConst && !d.contains(v) {
			pass.Reportf(assign.Rhs[i].Pos(), "%s.%s = %g outside its domain %s", rule.name, sel.Sel.Name, v, d)
		}
	}
}

// checkEnum verifies a constant string field against its allowed
// values, e.g. Config.Mode = "approximate".
func checkEnum(pass *lint.Pass, structName, fieldName string, allowed []string, value ast.Expr) {
	s, isConst := constString(pass, value)
	if !isConst {
		return
	}
	for _, a := range allowed {
		if s == a {
			return
		}
	}
	quoted := make([]string, 0, len(allowed))
	for _, a := range allowed {
		if a != "" { // "" is the default, not something to suggest
			quoted = append(quoted, fmt.Sprintf("%q", a))
		}
	}
	pass.Reportf(value.Pos(), "%s.%s = %q, want one of %s (or empty for the default)",
		structName, fieldName, s, strings.Join(quoted, ", "))
}

// checkValidateReachable reports non-empty core.Params literals in
// functions that never reach a domain check.
func checkValidateReachable(pass *lint.Pass, fn *ast.FuncDecl) {
	var lits []*ast.CompositeLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.CompositeLit); ok && len(lit.Elts) > 0 {
			if rule := ruleFor(pass.TypeOf(lit)); rule != nil && rule.needsValidate {
				lits = append(lits, lit)
			}
		}
		return true
	})
	if len(lits) == 0 || hasDomainCheck(pass, fn.Body) {
		return
	}
	for _, lit := range lits {
		pass.Reportf(lit.Pos(), "core.Params built in %s with no reachable domain check; call Params.Validate before using it", fn.Name.Name)
	}
}

// hasDomainCheck reports whether the body calls Params.Validate or any
// validation helper — a callee whose name contains "valid" (Validate,
// validFraction, validAlpha, …).
func hasDomainCheck(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			found = isValidateName(fun.Name)
		case *ast.SelectorExpr:
			found = isValidateName(fun.Sel.Name)
		}
		return !found
	})
	return found
}

func isValidateName(name string) bool {
	return strings.Contains(strings.ToLower(name), "valid")
}

// constFloat resolves e to a constant numeric value.
func constFloat(pass *lint.Pass, e ast.Expr) (float64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		return v, true
	}
	return 0, false
}

// constString resolves e to a constant string value.
func constString(pass *lint.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
