package paramdomain_test

import (
	"testing"

	"tradeoff/internal/analysis/analysistest"
	"tradeoff/internal/analysis/paramdomain"
)

func TestParamdomain(t *testing.T) {
	analysistest.Run(t, "testdata", paramdomain.Analyzer, "paramtest")
}
