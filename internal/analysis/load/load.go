// Package load type-checks Go packages for the lint analyzers using
// only the standard library and the go tool: `go list -export` supplies
// compiler export data for every dependency, so a package's own sources
// are the only thing parsed and type-checked from scratch. This keeps
// the analysis suite free of external module downloads (there is no
// vendored x/tools in this repo) while still giving analyzers full
// types.Info resolution.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// The lint.Target view.

func (p *Package) ASTFiles() []*ast.File    { return p.Files }
func (p *Package) FileSet() *token.FileSet  { return p.Fset }
func (p *Package) TypesPkg() *types.Package { return p.Types }
func (p *Package) Info() *types.Info        { return p.TypesInfo }

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

const listFields = "-json=ImportPath,Dir,Export,GoFiles,CgoFiles,DepOnly,ImportMap,Incomplete,Error"

// goList runs `go list -e -export -deps` in dir over the patterns and
// returns the decoded package stream in dependency-first order.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", listFields}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the export-data resolver the gc importer uses.
// importMap folds every listed package's ImportMap together; the
// mappings (std-vendored paths, mostly) are globally consistent.
func exportLookup(exports, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

func sizes() types.Sizes {
	if s := types.SizesFor("gc", runtime.GOARCH); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

// Load type-checks the packages matching patterns (resolved relative to
// dir, e.g. "./...") and returns them in dependency-first order.
// Only non-test build-included sources are loaded, matching the
// analyzers' charter of checking production code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	importMap := map[string]string{}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports, importMap))
	var out []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("load: %s uses cgo, which the loader does not support", t.ImportPath)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check parses and type-checks one package's files.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: sizes()}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// Fixture loads testdata fixture packages GOPATH-style: the import path
// "p" resolves to root/src/p, fixture packages may import each other,
// and any other import resolves to the standard library via export
// data. This mirrors x/tools' analysistest layout so golden corpora
// look the way Go developers expect.
func Fixture(root, path string) (*Package, error) {
	f := &fixtureLoader{
		root:    root,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*Package{},
		exports: map[string]string{},
		stdImp:  map[string]bool{},
	}
	// Gather the std imports reachable from the fixture tree so one
	// `go list -export` run covers them all.
	if err := f.scanStdImports(path, map[string]bool{}); err != nil {
		return nil, err
	}
	if len(f.stdImp) > 0 {
		roots := make([]string, 0, len(f.stdImp))
		for p := range f.stdImp {
			roots = append(roots, p)
		}
		sort.Strings(roots) // stable go list argv, stable command cache
		listed, err := goList(root, roots)
		if err != nil {
			return nil, err
		}
		importMap := map[string]string{}
		for _, p := range listed {
			if p.Export != "" {
				f.exports[p.ImportPath] = p.Export
			}
			for from, to := range p.ImportMap {
				importMap[from] = to
			}
		}
		f.gc = importer.ForCompiler(f.fset, "gc", exportLookup(f.exports, importMap))
	}
	return f.load(path)
}

type fixtureLoader struct {
	root    string
	fset    *token.FileSet
	pkgs    map[string]*Package
	exports map[string]string
	stdImp  map[string]bool
	gc      types.Importer
}

func (f *fixtureLoader) dirFor(path string) string { return filepath.Join(f.root, "src", path) }

func (f *fixtureLoader) isFixture(path string) bool {
	st, err := os.Stat(f.dirFor(path))
	return err == nil && st.IsDir()
}

// scanStdImports walks the fixture import graph collecting non-fixture
// (standard library) import paths.
func (f *fixtureLoader) scanStdImports(path string, seen map[string]bool) error {
	if seen[path] {
		return nil
	}
	seen[path] = true
	files, err := f.goFilesIn(f.dirFor(path))
	if err != nil {
		return err
	}
	for _, name := range files {
		src, err := parser.ParseFile(token.NewFileSet(), name, nil, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("load: %w", err)
		}
		for _, imp := range src.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if f.isFixture(p) {
				if err := f.scanStdImports(p, seen); err != nil {
					return err
				}
			} else {
				f.stdImp[p] = true
			}
		}
	}
	return nil
}

func (f *fixtureLoader) goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	return files, nil
}

// Import resolves fixture-local packages from the tree and everything
// else through export data, making fixtureLoader a types.Importer.
func (f *fixtureLoader) Import(path string) (*types.Package, error) {
	if f.isFixture(path) {
		pkg, err := f.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if f.gc == nil {
		return nil, fmt.Errorf("load: unexpected import %q in fixture", path)
	}
	return f.gc.Import(path)
}

func (f *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := f.pkgs[path]; ok {
		return pkg, nil
	}
	dir := f.dirFor(path)
	names, err := f.goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		parsed, err := parser.ParseFile(f.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, parsed)
	}
	info := newInfo()
	conf := types.Config{Importer: f, Sizes: sizes()}
	tpkg, err := conf.Check(path, f.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking fixture %s: %w", path, err)
	}
	pkg := &Package{ImportPath: path, Dir: dir, Fset: f.fset, Files: files, Types: tpkg, TypesInfo: info}
	f.pkgs[path] = pkg
	return pkg, nil
}
