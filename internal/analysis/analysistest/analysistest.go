// Package analysistest runs a lint.Analyzer over a golden fixture tree
// and checks its findings against expectations written in the fixtures
// themselves, mirroring x/tools' analysistest convention:
//
//	bad := a == b // want `float64 equality`
//
// Each back-quoted or double-quoted string after "want" is a regular
// expression that must match a finding reported on that line; findings
// with no matching expectation, and expectations with no matching
// finding, both fail the test.
//
// A fixture file may instead declare itself a negative case with a
// file-level directive comment
//
//	// want:none
//
// asserting the analyzer reports nothing anywhere in that file. The
// directive makes the absence an explicit, reviewable expectation —
// a clean file with no want comments passes silently, but a want:none
// file that starts reporting (or that also carries want comments,
// which would contradict it) fails loudly.
package analysistest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/load"
)

var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)$")
var wantArgRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one "want" pattern at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads each fixture package from root/src and applies the
// analyzer, comparing findings to the // want comments.
func Run(t *testing.T, root string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		pkg, err := load.Fixture(root, path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		findings, err := lint.Run(pkg, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		expectations, negatives := collectWants(t, pkg.Fset, pkg)
		for _, f := range findings {
			if negatives[f.Pos.Filename] {
				t.Errorf("%s declares `// want:none` but got finding: %s", f.Pos.Filename, f)
				continue
			}
			if !claim(expectations, f) {
				t.Errorf("unexpected finding: %s", f)
			}
		}
		for _, e := range expectations {
			if !e.hit {
				t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.re)
			}
		}
	}
}

// claim marks the first unmatched expectation on the finding's line
// whose pattern matches, and reports whether one was found.
func claim(exps []*expectation, f lint.Finding) bool {
	for _, e := range exps {
		if !e.hit && e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
			e.hit = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, fset *token.FileSet, pkg *load.Package) ([]*expectation, map[string]bool) {
	t.Helper()
	var exps []*expectation
	negatives := map[string]bool{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == "// want:none" {
					negatives[fset.Position(c.Pos()).Filename] = true
					continue
				}
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllString(m[1], -1) {
					pattern := arg
					if strings.HasPrefix(arg, "`") {
						pattern = strings.Trim(arg, "`")
					} else {
						var err error
						pattern, err = strconv.Unquote(arg)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, arg, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, e := range exps {
		if negatives[e.file] {
			t.Fatalf("%s: file declares `// want:none` but also carries a // want expectation at line %d", e.file, e.line)
		}
	}
	return exps, negatives
}
