// Package analysistest runs a lint.Analyzer over a golden fixture tree
// and checks its findings against expectations written in the fixtures
// themselves, mirroring x/tools' analysistest convention:
//
//	bad := a == b // want `float64 equality`
//
// Each back-quoted or double-quoted string after "want" is a regular
// expression that must match a finding reported on that line; findings
// with no matching expectation, and expectations with no matching
// finding, both fail the test.
package analysistest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/load"
)

var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)$")
var wantArgRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one "want" pattern at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads each fixture package from root/src and applies the
// analyzer, comparing findings to the // want comments.
func Run(t *testing.T, root string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		pkg, err := load.Fixture(root, path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		findings, err := lint.Run(pkg, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		expectations := collectWants(t, pkg.Fset, pkg)
		for _, f := range findings {
			if !claim(expectations, f) {
				t.Errorf("unexpected finding: %s", f)
			}
		}
		for _, e := range expectations {
			if !e.hit {
				t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.re)
			}
		}
	}
}

// claim marks the first unmatched expectation on the finding's line
// whose pattern matches, and reports whether one was found.
func claim(exps []*expectation, f lint.Finding) bool {
	for _, e := range exps {
		if !e.hit && e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
			e.hit = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, fset *token.FileSet, pkg *load.Package) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllString(m[1], -1) {
					pattern := arg
					if strings.HasPrefix(arg, "`") {
						pattern = strings.Trim(arg, "`")
					} else {
						var err error
						pattern, err = strconv.Unquote(arg)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, arg, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return exps
}
