package ctxflow_test

import (
	"testing"

	"tradeoff/internal/analysis/analysistest"
	"tradeoff/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxtest")
}
