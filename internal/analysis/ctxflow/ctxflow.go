// Package ctxflow enforces context propagation through the concurrent
// subsystems (the internal/sweep worker pool and the internal/service
// handlers): a request's context must reach every goroutine working on
// its behalf, or cancellation — a disconnected client, a SIGTERM drain
// — silently stops propagating and workers leak.
//
// Two patterns are flagged wherever a context.Context is already in
// scope:
//
//  1. a `go` statement whose spawned function neither receives a
//     context argument nor captures an in-scope context variable, and
//  2. a call to context.Background() or context.TODO(), which forks a
//     fresh, uncancellable context instead of threading the caller's.
//
// Functions with no context in scope are never flagged, so purely
// synchronous helpers and CLIs that have not adopted contexts stay
// quiet.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/typeutil"
)

// Analyzer is the ctxflow check.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc:  "flags goroutines and context.Background()/TODO() calls that drop an in-scope context.Context instead of propagating it",
	Run:  run,
}

// ctxVar is one in-scope context.Context: the defining object plus the
// position after which it is usable (its declaration's end).
type ctxVar struct {
	obj   types.Object
	ready token.Pos
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn.Type, fn.Body, nil)
			}
		}
	}
	return nil
}

// checkFunc walks one function body with the contexts inherited from
// enclosing functions, recursing into nested literals.
func checkFunc(pass *lint.Pass, ftype *ast.FuncType, body *ast.BlockStmt, inherited []ctxVar) {
	ctxs := append([]ctxVar(nil), inherited...)
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil && typeutil.IsContext(obj.Type()) {
					ctxs = append(ctxs, ctxVar{obj: obj, ready: field.End()})
				}
			}
		}
	}
	// Collect locally declared contexts first so a goroutine later in
	// the body sees contexts declared anywhere before it.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its params/locals belong to the nested walk
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil && typeutil.IsContext(obj.Type()) {
						ctxs = append(ctxs, ctxVar{obj: obj, ready: n.End()})
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				if obj := pass.TypesInfo.Defs[id]; obj != nil && typeutil.IsContext(obj.Type()) {
					ctxs = append(ctxs, ctxVar{obj: obj, ready: n.End()})
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(pass, n.Type, n.Body, ctxs)
			return false
		case *ast.GoStmt:
			if inScope(ctxs, n.Pos()) && !propagates(pass, n.Call, ctxs) {
				pass.Reportf(n.Pos(), "goroutine drops the in-scope context.Context; pass it to the spawned function or capture it")
			}
			// The call's arguments and a spawned literal still need the
			// Background/TODO walk; FuncLit recursion above handles the
			// literal when Inspect descends.
			return true
		case *ast.CallExpr:
			if fn := typeutil.Callee(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
				if inScope(ctxs, n.Pos()) {
					pass.Reportf(n.Pos(), "context.%s() forks a fresh context while one is in scope; thread the caller's context instead", fn.Name())
				}
			}
		}
		return true
	})
}

// inScope reports whether any context is usable at pos.
func inScope(ctxs []ctxVar, pos token.Pos) bool {
	for _, c := range ctxs {
		if c.ready <= pos {
			return true
		}
	}
	return false
}

// propagates reports whether the goroutine's call carries a context:
// through an argument, through the called expression itself, or by
// capturing an in-scope context variable inside a spawned literal.
func propagates(pass *lint.Pass, call *ast.CallExpr, ctxs []ctxVar) bool {
	for _, arg := range call.Args {
		if typeutil.IsContext(pass.TypeOf(arg)) {
			return true
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		captured := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && !captured {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					for _, c := range ctxs {
						if c.obj == obj {
							captured = true
						}
					}
				}
			}
			return !captured
		})
		return captured
	}
	// go method-value or bound call: a context receiver is enough.
	if typeutil.IsContext(pass.TypeOf(call.Fun)) {
		return true
	}
	return false
}
