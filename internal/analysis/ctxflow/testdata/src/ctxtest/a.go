package ctxtest

import (
	"context"
	"sync"
)

func work(ctx context.Context, i int) {}
func compute(i int)                   {}

func pool(ctx context.Context, jobs []int) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) { // want `goroutine drops the in-scope context.Context`
			defer wg.Done()
			compute(j)
		}(j)
	}
	wg.Wait()
}

func poolOK(ctx context.Context, jobs []int) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			if ctx.Err() != nil { // captures ctx: fine
				return
			}
			compute(j)
		}(j)
	}
	wg.Wait()
	go work(ctx, 0) // context passed as argument: fine
}

func noContextAnywhere(jobs []int) {
	for _, j := range jobs {
		go compute(j) // no context in scope: fine
	}
}

func freshContext(ctx context.Context) {
	sub := context.Background() // want `context.Background\(\) forks a fresh context`
	work(sub, 0)
	todo := context.TODO() // want `context.TODO\(\) forks a fresh context`
	work(todo, 0)
}

func declaringIsFine() {
	ctx := context.Background() // declares the first context: fine
	work(ctx, 0)
}

func derivedIsFine(ctx context.Context) {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	go work(sub, 1)
}

func suppressed(ctx context.Context) {
	//lint:ignore ctxflow listener lifetime is managed by Shutdown
	go compute(1)
}
