// Package lockguard cross-checks a package's locking discipline: a
// struct field that is accessed under a sync.Mutex/RWMutex in one
// function but bare in another is a data race `go test -race` only
// catches when the schedule cooperates — this analyzer catches it on
// every build. It also flags mixed atomic/direct access to the same
// field (atomic.AddInt64(&s.n, 1) in one place, s.n++ in another),
// which has the same probabilistic-detection problem.
//
// Lock state is computed flow-sensitively on the dataflow CFG as a
// must-analysis: a field access counts as guarded only when the
// mutex is held on every path reaching it. mu.Lock() acquires,
// mu.Unlock() releases, and a deferred Unlock holds the lock to the
// function's exit. Mutexes are identified by the source text of the
// expression they are locked through ("m.mu", "s.tracer.mu", or the
// struct itself for an embedded sync.Mutex), so a mutex guards the
// fields of whatever instance it hangs off.
//
// Helpers that run with the caller's lock held declare it with a
// directive in their doc comment:
//
//	//lockguard:held mu
//
// which seeds the receiver's named mutex as held at entry. This is
// the analyzer's epsilon versus the runtime race detector: the
// directive is trusted, not verified — DESIGN.md §5.7 discusses the
// tradeoff.
//
// Two access sites never count: composite-literal construction, and
// any access in a function that freshly constructs the instance
// (&T{...}, new(T)) — an object not yet published needs no lock.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"tradeoff/internal/analysis/dataflow"
	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/typeutil"
)

// Analyzer is the lockguard check.
var Analyzer = &lint.Analyzer{
	Name: "lockguard",
	Doc:  "flags struct fields accessed bare in one function but mutex-guarded (or atomically accessed) in another",
	Run:  run,
}

// access is one field touch: where, through which instance, and how.
type access struct {
	pos      token.Pos
	fn       *ast.FuncDecl // enclosing declared function (nil inside a FuncLit)
	baseText string
	guarded  bool
	atomic   bool
}

// fieldKey identifies a struct field across functions.
type fieldKey struct {
	obj *types.Var
}

func run(pass *lint.Pass) error {
	c := &collector{
		pass:     pass,
		accesses: map[fieldKey][]*access{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				c.fn = fn
				c.analyzeBody(fn.Body, directiveSeeds(pass, fn))
			}
		}
	}
	c.report()
	return nil
}

type collector struct {
	pass     *lint.Pass
	fn       *ast.FuncDecl
	accesses map[fieldKey][]*access
}

// directiveSeeds parses //lockguard:held directives from the doc
// comment: each named field is seeded held through the receiver.
func directiveSeeds(pass *lint.Pass, fn *ast.FuncDecl) map[string]bool {
	seeds := map[string]bool{}
	if fn.Doc == nil || fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return seeds
	}
	recv := fn.Recv.List[0].Names[0].Name
	for _, c := range fn.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//lockguard:held")
		if !ok {
			continue
		}
		for _, name := range strings.Fields(rest) {
			seeds[recv+"."+name] = true
		}
	}
	return seeds
}

// analyzeBody runs the lock-set analysis over one flow unit and
// recurses into function literals (each literal is its own unit with
// no inherited locks: it runs at call time, not where it appears).
func (c *collector) analyzeBody(body *ast.BlockStmt, seeds map[string]bool) {
	g := dataflow.New(body)

	// Fixpoint: in[b] = ∩ out(p) over computed predecessors.
	in := make([]map[string]bool, len(g.Blocks))
	rpo := g.ReversePostorder()
	in[g.Entry.Index] = cloneSet(seeds)
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b != g.Entry {
				var meet map[string]bool
				for _, p := range b.Preds {
					if in[p.Index] == nil {
						continue
					}
					out := c.transferBlock(p, cloneSet(in[p.Index]))
					if meet == nil {
						meet = out
					} else {
						meet = intersect(meet, out)
					}
				}
				if meet == nil {
					continue // not yet reachable
				}
				if !sameSet(in[b.Index], meet) {
					in[b.Index] = meet
					changed = true
				}
			}
		}
	}

	// Final pass: record each field access with the held-set at its
	// node, then apply the node's lock transfers.
	for _, b := range g.Blocks {
		if in[b.Index] == nil {
			continue
		}
		held := cloneSet(in[b.Index])
		for _, n := range b.Nodes {
			c.recordAccesses(n, held)
			c.transferNode(n, held)
		}
	}

	// Function literals are separate flow units.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			savedFn := c.fn
			c.fn = nil
			c.analyzeBody(lit.Body, map[string]bool{})
			c.fn = savedFn
			return false
		}
		return true
	})
}

// transferBlock applies every node's lock operations to set.
func (c *collector) transferBlock(b *dataflow.Block, set map[string]bool) map[string]bool {
	for _, n := range b.Nodes {
		c.transferNode(n, set)
	}
	return set
}

// transferNode applies Lock/Unlock calls inside one simple node.
// Deferred statements are skipped: a deferred Unlock releases at
// exit, so the lock stays held for the rest of the function.
func (c *collector) transferNode(n ast.Node, set map[string]bool) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	dataflow.Scan(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return false
		}
		name, target := c.mutexOp(call)
		switch name {
		case "Lock", "RLock":
			set[target] = true
		case "Unlock", "RUnlock":
			delete(set, target)
		}
		return false
	})
}

// mutexOp recognizes a sync.Mutex / sync.RWMutex method call and
// returns the method name and the mutex expression's source text
// ("m.mu", or "c" for an embedded mutex locked through the struct).
func (c *collector) mutexOp(call *ast.CallExpr) (string, string) {
	fn := typeutil.Callee(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", ""
	}
	rt := typeutil.Deref(recv.Type())
	named, ok := rt.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return fn.Name(), exprText(sel.X)
}

func isMutex(t types.Type) bool {
	return typeutil.IsNamed(t, "sync", "Mutex") || typeutil.IsNamed(t, "sync", "RWMutex")
}

// recordAccesses collects guarded/bare/atomic field touches in one
// simple node, given the held-set at its entry.
func (c *collector) recordAccesses(n ast.Node, held map[string]bool) {
	// Selector expressions consumed by an atomic.* call are atomic
	// accesses, not bare ones.
	atomicSels := map[*ast.SelectorExpr]bool{}
	dataflow.Scan(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := typeutil.Callee(c.pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return false
		}
		for _, arg := range call.Args {
			if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					atomicSels[sel] = true
				}
			}
		}
		return false
	})

	dataflow.Scan(n, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		selection := c.pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return false
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok || !field.IsField() || isMutex(field.Type()) {
			return false
		}
		// Only fields of this package's own structs: the discipline
		// being cross-checked is this package's.
		if field.Pkg() != c.pass.Pkg {
			return false
		}
		base := exprText(sel.X)
		c.accesses[fieldKey{obj: field}] = append(c.accesses[fieldKey{obj: field}], &access{
			pos:      sel.Pos(),
			fn:       c.fn,
			baseText: base,
			guarded:  heldFor(held, base),
			atomic:   atomicSels[sel],
		})
		return false
	})
}

// heldFor reports whether any held mutex guards the instance named by
// baseText: the mutex hangs directly off it ("m.mu" guards "m") or is
// it ("c" for an embedded mutex locked through the struct).
func heldFor(held map[string]bool, baseText string) bool {
	for h := range held {
		if h == baseText || strings.HasPrefix(h, baseText+".") {
			return true
		}
	}
	return false
}

// report cross-references the collected accesses per field. A bare
// access is flagged when the field is mutex-guarded in some other
// function AND guarded sites are not outnumbered by bare ones — the
// majority-discipline heuristic that keeps a field incidentally read
// under an unrelated lock once, but bare everywhere by design, quiet.
// Mixed atomic/direct access is flagged unconditionally: one atomic
// site is already a statement of intent.
func (c *collector) report() {
	// Deterministic field order for stable output.
	keys := make([]fieldKey, 0, len(c.accesses))
	for key := range c.accesses {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].obj.Pos() < keys[j].obj.Pos() })

	for _, key := range keys {
		list := c.accesses[key]
		var guardedTotal, atomicTotal int
		var candidates []*access
		for _, a := range list {
			switch {
			case a.guarded:
				guardedTotal++
			case a.atomic:
				atomicTotal++
			case c.constructs(a):
				// Freshly constructed, not yet published: exempt.
			default:
				candidates = append(candidates, a)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i].pos < candidates[j].pos })
		for _, a := range candidates {
			guardedElsewhere := 0
			for _, o := range list {
				if o.guarded && (o.fn != a.fn || a.fn == nil) {
					guardedElsewhere++
				}
			}
			switch {
			case guardedElsewhere > 0 && guardedTotal >= len(candidates):
				c.pass.Reportf(a.pos, "field %s is mutex-guarded at %d other site(s) but accessed here without holding the lock (add //lockguard:held <mutex> if the caller holds it)", key.obj.Name(), guardedElsewhere)
			case atomicTotal > 0:
				c.pass.Reportf(a.pos, "field %s is accessed atomically at %d other site(s) but directly here; mixed atomic/direct access races", key.obj.Name(), atomicTotal)
			}
		}
	}
}

// constructs reports whether the access's enclosing function freshly
// constructs its instance (the not-yet-published exemption).
func (c *collector) constructs(a *access) bool {
	if a.fn == nil || a.fn.Body == nil {
		return false
	}
	root, _, _ := strings.Cut(a.baseText, ".")
	fresh := false
	ast.Inspect(a.fn.Body, func(n ast.Node) bool {
		if fresh {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name != root || i >= len(as.Rhs) && len(as.Rhs) != 1 {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			switch r := ast.Unparen(rhs).(type) {
			case *ast.CompositeLit:
				fresh = true
			case *ast.UnaryExpr:
				if r.Op == token.AND {
					if _, ok := r.X.(*ast.CompositeLit); ok {
						fresh = true
					}
				}
			case *ast.CallExpr:
				if id, ok := r.Fun.(*ast.Ident); ok && id.Name == "new" {
					fresh = true
				}
			}
		}
		return !fresh
	})
	return fresh
}

// cloneSet copies a held-set.
func cloneSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// intersect keeps only mutexes held in both sets (must-analysis meet).
func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// sameSet reports whether a (possibly nil: not yet computed) equals b.
func sameSet(a, b map[string]bool) bool {
	if a == nil {
		return false
	}
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// exprText renders an expression as compact source text.
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "()"
	}
	return "?"
}
