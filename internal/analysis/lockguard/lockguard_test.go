package lockguard_test

import (
	"testing"

	"tradeoff/internal/analysis/analysistest"
	"tradeoff/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer, "locktest")
}
