// Fixtures for the lockguard analyzer: fields mutex-guarded in one
// function but bare in another, must-analysis at branch merges, the
// embedded-mutex form, and mixed atomic/direct access.
package locktest

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) incDeferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) get() int {
	return c.n // want `field n is mutex-guarded at 3 other site`
}

func (c *counter) maybeLocked(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want `field n is mutex-guarded at 3 other site`
	if b {
		c.mu.Unlock()
	}
}

func (c *counter) reset() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
	c.n = 0 // want `field n is mutex-guarded at 2 other site`
}

type registry struct {
	sync.Mutex
	entries map[string]int
}

func (r *registry) add(k string) {
	r.Lock()
	r.entries[k]++
	r.Unlock()
}

func (r *registry) size() int {
	return len(r.entries) // want `field entries is mutex-guarded at 1 other site`
}

type stats struct {
	reqs int64
}

func record(s *stats) {
	atomic.AddInt64(&s.reqs, 1)
}

func (s *stats) snapshot() int64 {
	return s.reqs // want `field reqs is accessed atomically at 1 other site`
}
