// Negative cases: disciplined locking that must stay quiet.
// want:none
package locktest

import "sync"

type box struct {
	mu  sync.Mutex
	val int
}

func (b *box) set(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.val = v
}

func (b *box) swap(v int) int {
	b.mu.Lock()
	old := b.val
	b.val = v
	b.mu.Unlock()
	return old
}

// applyLocked runs with b.mu held by the caller.
//
//lockguard:held mu
func (b *box) applyLocked(f func(int) int) {
	b.val = f(b.val)
}

func (b *box) eitherBranchLocks(x bool) {
	if x {
		b.mu.Lock()
	} else {
		b.mu.Lock()
	}
	b.val++
	b.mu.Unlock()
}

func (b *box) async() {
	go func() {
		b.mu.Lock()
		b.val++
		b.mu.Unlock()
	}()
}

func newBox(v int) *box {
	b := &box{}
	b.val = v // not yet published: no lock needed
	return b
}

type config struct {
	mu    sync.Mutex
	state int
	name  string
}

func (c *config) bump() {
	c.mu.Lock()
	c.state++
	c.mu.Unlock()
}

func (c *config) rename(n string) {
	c.mu.Lock()
	c.state++
	c.name = n // incidentally under the lock; name's discipline is bare
	c.mu.Unlock()
}

func (c *config) label() string  { return c.name }
func (c *config) label2() string { return c.name }
