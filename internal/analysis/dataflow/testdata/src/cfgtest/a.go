// Package cfgtest is the golden fixture for the dataflow CFG builder:
// each function exercises one control shape, and the pinned dump in
// testdata/cfgtest.golden locks the block/edge structure the solvers
// (and the four flow-sensitive analyzers) depend on.
package cfgtest

import "fmt"

func straight(a int) int {
	b := a + 1
	c := b * 2
	return c
}

func ifElse(a int) int {
	if a > 0 {
		a++
	} else {
		a--
	}
	return a
}

func ifEarlyReturn(a int) int {
	if a > 0 {
		return 1
	}
	return 0
}

func forLoop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
		if s > 100 {
			break
		}
	}
	return s
}

func rangeLoop(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		s += x
	}
	return s
}

func switchCases(a int) string {
	switch a {
	case 0:
		return "zero"
	case 1:
		fallthrough
	case 2:
		return "small"
	default:
		return "big"
	}
}

func deferred(a int) (err error) {
	defer fmt.Println("done")
	if a < 0 {
		return fmt.Errorf("negative")
	}
	return nil
}

func labeledBreak(grid [][]int) int {
outer:
	for _, row := range grid {
		for _, v := range row {
			if v == 0 {
				break outer
			}
		}
	}
	return 0
}

func dies(a int) int {
	if a < 0 {
		panic("negative")
	}
	return a
}

func selectLoop(ch chan int, done chan struct{}) int {
	s := 0
	for {
		select {
		case v := <-ch:
			s += v
		case <-done:
			return s
		}
	}
}
