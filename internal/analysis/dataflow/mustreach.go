package dataflow

import (
	"go/ast"
)

// Scan visits n's subtree in source order, calling f on every node
// until f returns true, and reports whether f matched. Function
// literal bodies are skipped: their statements execute at call time,
// not where the literal appears, so flow-sensitive predicates must not
// treat them as part of the enclosing path.
func Scan(n ast.Node, f func(ast.Node) bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found || m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if f(m) {
			found = true
			return false
		}
		return true
	})
	return found
}

// MustReachExit reports whether every execution path from the node
// `from` (a simple statement or guard expression in the graph) to the
// function's exit passes through a node satisfying the predicate.
// Deferred calls run on every exiting path, so a satisfying deferred
// call satisfies the query outright. Paths that die before Exit — a
// panic, os.Exit, an infinite loop — are vacuously satisfied: the
// solver answers "can execution fall off the end without satisfying",
// which is the question leak checks ask.
//
// If `from` is not in the graph, MustReachExit returns false (the
// conservative answer for a leak check: nothing was proven).
func (g *Graph) MustReachExit(from ast.Node, satisfies func(ast.Node) bool) bool {
	for _, d := range g.Defers {
		if Scan(d, satisfies) {
			return true
		}
	}
	start := g.nodeBlock[from]
	if start == nil {
		return false
	}
	// Position after `from` within its block.
	idx := -1
	for i, n := range start.Nodes {
		if n == from {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}

	// DFS for a path to Exit that avoids every satisfying node. The
	// visited set is block-granular: entering a block twice from its
	// start cannot discover anything new.
	visited := make([]bool, len(g.Blocks))
	var escape func(b *Block, startIdx int) bool
	escape = func(b *Block, startIdx int) bool {
		for _, n := range b.Nodes[startIdx:] {
			if Scan(n, satisfies) {
				return false // this path is satisfied
			}
		}
		if b == g.Exit {
			return true // reached exit unsatisfied: leak path exists
		}
		for _, s := range b.Succs {
			if visited[s.Index] {
				continue
			}
			visited[s.Index] = true
			if escape(s, 0) {
				return true
			}
		}
		return false
	}
	return !escape(start, idx+1)
}
