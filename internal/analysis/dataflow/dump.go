package dataflow

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Dump renders the graph as stable text for golden tests: one stanza
// per block in creation order, with each node's source text on its
// own line and the successor list at the end. Unreachable
// continuation blocks with no nodes and no edges are elided — they
// are construction artifacts, not structure.
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" && len(b.Nodes) == 0 && len(b.Preds) == 0 && len(b.Succs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "b%d %s\n", b.Index, b.Kind)
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, "\t%s\n", nodeText(fset, n))
		}
		if len(b.Succs) > 0 {
			ids := make([]string, len(b.Succs))
			for i, s := range b.Succs {
				ids[i] = fmt.Sprintf("b%d", s.Index)
			}
			fmt.Fprintf(&sb, "\t-> %s\n", strings.Join(ids, " "))
		}
	}
	if len(g.Defers) > 0 {
		sb.WriteString("defers\n")
		for _, d := range g.Defers {
			fmt.Fprintf(&sb, "\t%s\n", nodeText(fset, d))
		}
	}
	return sb.String()
}

// nodeText renders one node's source, collapsing internal whitespace
// so multi-line statements stay one dump line.
func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
