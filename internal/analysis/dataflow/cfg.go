// Package dataflow is the flow-sensitive tier under the tradeoffvet
// analyzers: a dependency-free control-flow-graph builder over
// go/ast, plus the two solvers the analyzers share — reaching
// definitions (which assignments may reach a use) and must-reach-exit
// (does every path from a statement to the function's exit pass
// through a satisfying node). The PR-2 analyzers are syntactic and
// type-based; this tier is what lets spanleak see "End() on all
// paths", lockguard see "mutex held here", detorder see "sorted
// before encoded", and hotalloc see "defined without capacity when
// the loop appends".
//
// The graph is per-function and intraprocedural. Blocks hold
// ast.Nodes in execution order; composite statements (if, for, range,
// switch, select) contribute only their guard parts — Cond, Tag, the
// range operand — to the block that evaluates them, while their
// bodies get blocks of their own. Function literals are opaque: their
// bodies are not traversed (analyzers build separate graphs for
// them), matching x/tools/go/cfg.
//
// Panic calls and calls that never return (os.Exit, log.Fatal*,
// runtime.Goexit) terminate their block with no successor: a path
// that dies there never reaches Exit, so must-reach-exit treats it as
// vacuously satisfied, the same stance x/tools' lostcancel takes.
package dataflow

import (
	"go/ast"
	"go/token"
)

// A Block is a maximal straight-line sequence of nodes: execution
// enters at the first node and leaves at the last, branching only to
// the successor blocks.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "body", "if.then", "for.head", ...
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	Exit  *Block
	// Blocks lists every block in creation order (deterministic for a
	// given source file, which the golden tests pin).
	Blocks []*Block
	// Defers collects every deferred call in the body, in source
	// order. Deferred calls run on every path that reaches Exit, so
	// the must-reach solver consults them before walking the graph.
	Defers []*ast.CallExpr

	nodeBlock map[ast.Node]*Block // simple node → the block holding it
	guard     map[ast.Stmt]*Block // composite stmt → block evaluating its guard
	follow    map[ast.Stmt]*Block // composite stmt → the block execution resumes in
}

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{
		nodeBlock: map[ast.Node]*Block{},
		guard:     map[ast.Stmt]*Block{},
		follow:    map[ast.Stmt]*Block{},
	}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = g.newBlock("entry")
	g.Exit = g.newBlock("exit")
	b.cur = g.Entry
	b.stmtList(body.List)
	b.jumpTo(g.Exit) // implicit return at the end of the body
	for _, pending := range b.gotos {
		if li := b.labels[pending.label]; li != nil && li.target != nil {
			b.edge(pending.from, li.target)
		}
	}
	return g
}

// BlockOf returns the block holding n — a simple statement or a
// composite statement's guard — or nil if n is not in the graph.
func (g *Graph) BlockOf(n ast.Node) *Block { return g.nodeBlock[n] }

// GuardBlock returns the block that evaluates a composite statement's
// guard (an if's condition, a range's operand), or nil.
func (g *Graph) GuardBlock(s ast.Stmt) *Block { return g.guard[s] }

// FollowBlock returns the block where execution resumes after a
// composite statement completes (the loop exit, the if join), or nil.
func (g *Graph) FollowBlock(s ast.Stmt) *Block { return g.follow[s] }

func (g *Graph) newBlock(kind string) *Block {
	b := &Block{Index: len(g.Blocks), Kind: kind}
	g.Blocks = append(g.Blocks, b)
	return b
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder — the iteration order under which forward dataflow
// problems converge fastest.
func (g *Graph) ReversePostorder() []*Block {
	var post []*Block
	seen := make([]bool, len(g.Blocks))
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// labelInfo tracks one label's targets while building.
type labelInfo struct {
	target         *Block // the labeled statement's first block (goto target)
	breakTarget    *Block // break <label>
	continueTarget *Block // continue <label>
}

// pendingGoto is a goto seen before its label.
type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g   *Graph
	cur *Block

	// loop/switch nesting for unlabeled break and continue.
	breaks    []*Block
	continues []*Block

	labels map[string]*labelInfo
	gotos  []pendingGoto

	// label pending attachment to the next loop/switch statement.
	curLabel *labelInfo
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to. The current block
// becomes a fresh unreachable block, so statements after a return or
// break still get blocks (they just have no predecessors).
func (b *builder) jump(to *Block) {
	b.edge(b.cur, to)
	b.cur = b.g.newBlock("unreachable")
}

// add records a simple node in the current block.
func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.g.nodeBlock[n] = b.cur
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// terminates reports whether call never returns: panic and the
// conventional process-enders.
func terminates(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		name := fun.Sel.Name
		switch {
		case pkg.Name == "os" && name == "Exit":
			return true
		case pkg.Name == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln" || name == "Panic" || name == "Panicf" || name == "Panicln"):
			return true
		case pkg.Name == "runtime" && name == "Goexit":
			return true
		}
	}
	return false
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.curLabel
	b.curLabel = nil

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.labels[s.Label.Name]
		if li == nil {
			li = &labelInfo{}
			b.labels[s.Label.Name] = li
		}
		start := b.g.newBlock("label." + s.Label.Name)
		b.jumpTo(start)
		b.cur = start
		li.target = start
		b.curLabel = li
		b.stmt(s.Stmt)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.breakTarget != nil {
					b.jump(li.breakTarget)
					return
				}
			} else if n := len(b.breaks); n > 0 {
				b.jump(b.breaks[n-1])
				return
			}
			b.cur = b.g.newBlock("unreachable")
		case token.CONTINUE:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.continueTarget != nil {
					b.jump(li.continueTarget)
					return
				}
			} else if n := len(b.continues); n > 0 {
				b.jump(b.continues[n-1])
				return
			}
			b.cur = b.g.newBlock("unreachable")
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.cur = b.g.newBlock("unreachable")
		case token.FALLTHROUGH:
			// Handled by the switch builder: the clause block already
			// received an edge to the next clause.
		}

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s.Call)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && terminates(call) {
			b.cur = b.g.newBlock("unreachable") // path dies here
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		b.g.guard[s] = b.cur
		condB := b.cur
		join := b.g.newBlock("if.join")
		b.g.follow[s] = join

		thenB := b.g.newBlock("if.then")
		b.edge(condB, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.jumpTo(join)

		if s.Else != nil {
			elseB := b.g.newBlock("if.else")
			b.edge(condB, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.jumpTo(join)
		} else {
			b.edge(condB, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.g.newBlock("for.head")
		b.jumpTo(head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.g.nodeBlock[s.Cond] = head
		}
		b.g.guard[s] = head
		exit := b.g.newBlock("for.exit")
		b.g.follow[s] = exit
		var post *Block
		backEdge := head
		if s.Post != nil {
			post = b.g.newBlock("for.post")
			backEdge = post
		}

		body := b.g.newBlock("for.body")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, exit) // cond false
		}
		if label != nil {
			label.breakTarget, label.continueTarget = exit, backEdge
		}
		b.breaks = append(b.breaks, exit)
		b.continues = append(b.continues, backEdge)
		b.cur = body
		b.stmtList(s.Body.List)
		b.jumpTo(backEdge)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]

		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.jumpTo(head)
		}
		b.cur = exit

	case *ast.RangeStmt:
		head := b.g.newBlock("range.head")
		b.jumpTo(head)
		head.Nodes = append(head.Nodes, s.X)
		b.g.nodeBlock[s.X] = head
		b.g.guard[s] = head
		exit := b.g.newBlock("range.exit")
		b.g.follow[s] = exit
		body := b.g.newBlock("range.body")
		b.edge(head, body)
		b.edge(head, exit) // range exhausted
		if label != nil {
			label.breakTarget, label.continueTarget = exit, head
		}
		b.breaks = append(b.breaks, exit)
		b.continues = append(b.continues, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.jumpTo(head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.g.guard[s] = b.cur
		b.switchClauses(s, s.Body.List, label, func(clause *ast.CaseClause, cb *Block) {
			for _, e := range clause.List {
				cb.Nodes = append(cb.Nodes, e)
				b.g.nodeBlock[e] = cb
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.g.guard[s] = b.cur
		b.switchClauses(s, s.Body.List, label, nil)

	case *ast.SelectStmt:
		entry := b.cur
		b.g.guard[s] = entry
		join := b.g.newBlock("select.join")
		b.g.follow[s] = join
		if label != nil {
			label.breakTarget = join
		}
		b.breaks = append(b.breaks, join)
		hasDefault := false
		for _, c := range s.Body.List {
			clause := c.(*ast.CommClause)
			cb := b.g.newBlock("select.case")
			b.edge(entry, cb)
			b.cur = cb
			if clause.Comm != nil {
				b.stmt(clause.Comm)
			} else {
				hasDefault = true
			}
			b.stmtList(clause.Body)
			b.jumpTo(join)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		_ = hasDefault // select blocks until a case is ready; every path goes through a clause
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no edge to join.
			b.cur = b.g.newBlock("unreachable")
			return
		}
		b.cur = join

	default:
		// Assign, Decl, IncDec, Send, Go, Empty, Expr...: straight-line.
		b.add(s)
	}
}

// switchClauses builds the clause blocks shared by switch and type
// switch. Clause list expressions are attributed via onClause (nil for
// type switches, whose case types carry no evaluation).
func (b *builder) switchClauses(s ast.Stmt, clauses []ast.Stmt, label *labelInfo, onClause func(*ast.CaseClause, *Block)) {
	entry := b.cur
	join := b.g.newBlock("switch.join")
	b.g.follow[s] = join
	if label != nil {
		label.breakTarget = join
	}
	b.breaks = append(b.breaks, join)

	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		clause := c.(*ast.CaseClause)
		kind := "switch.case"
		if clause.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.g.newBlock(kind)
		b.edge(entry, blocks[i])
		if onClause != nil {
			onClause(clause, blocks[i])
		}
	}
	if !hasDefault {
		b.edge(entry, join) // no case matched
	}
	for i, c := range clauses {
		clause := c.(*ast.CaseClause)
		b.cur = blocks[i]
		fallsThrough := false
		for _, st := range clause.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(clause.Body)
		if fallsThrough && i+1 < len(blocks) {
			b.jumpTo(blocks[i+1])
		} else {
			b.jumpTo(join)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

// jumpTo adds an edge from the current block to `to` unless the
// current block is a fresh unreachable continuation (a block with no
// predecessors and no nodes created after a jump) — in that case the
// edge would fabricate a path that cannot execute. Unlike jump, the
// current block is left in place for the caller to replace.
func (b *builder) jumpTo(to *Block) {
	if b.cur.Kind == "unreachable" && len(b.cur.Preds) == 0 && len(b.cur.Nodes) == 0 {
		return
	}
	b.edge(b.cur, to)
}
