package dataflow_test

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tradeoff/internal/analysis/dataflow"
	"tradeoff/internal/analysis/load"
)

// Regenerate the CFG golden with:
//
//	go test ./internal/analysis/dataflow -run TestCFGGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the CFG golden file")

// TestCFGGolden pins the block/edge structure the builder produces
// for every fixture function: a CFG regression silently changes what
// the solvers — and through them the four flow-sensitive analyzers —
// can prove, so the structure itself is golden-tested.
func TestCFGGolden(t *testing.T) {
	pkg, err := load.Fixture("testdata", "cfgtest")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var sb strings.Builder
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			g := dataflow.New(fn.Body)
			fmt.Fprintf(&sb, "func %s\n%s\n", fn.Name.Name, g.Dump(pkg.Fset))
		}
	}
	got := sb.String()

	golden := filepath.Join("testdata", "cfgtest.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (re-run with -update-golden?): %v", err)
	}
	if got != string(want) {
		t.Errorf("CFG dump differs from golden (re-run with -update-golden if intentional)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGraphInvariants checks structural properties on every fixture
// function: edge symmetry, entry reachability, and that reverse
// postorder starts at the entry and contains no duplicates.
func TestGraphInvariants(t *testing.T) {
	pkg, err := load.Fixture("testdata", "cfgtest")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			g := dataflow.New(fn.Body)
			for _, b := range g.Blocks {
				for _, s := range b.Succs {
					if !contains(s.Preds, b) {
						t.Errorf("%s: b%d -> b%d missing the reverse pred edge", fn.Name.Name, b.Index, s.Index)
					}
				}
				for _, p := range b.Preds {
					if !contains(p.Succs, b) {
						t.Errorf("%s: b%d <- b%d missing the forward succ edge", fn.Name.Name, b.Index, p.Index)
					}
				}
			}
			rpo := g.ReversePostorder()
			if len(rpo) == 0 || rpo[0] != g.Entry {
				t.Errorf("%s: reverse postorder does not start at entry", fn.Name.Name)
			}
			seen := map[int]bool{}
			for _, b := range rpo {
				if seen[b.Index] {
					t.Errorf("%s: block b%d appears twice in reverse postorder", fn.Name.Name, b.Index)
				}
				seen[b.Index] = true
			}
		}
	}
}

func contains(bs []*dataflow.Block, b *dataflow.Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// parseFunc parses one function body from source for solver tests
// that need no type information.
func parseFunc(t *testing.T, src string) (*token.FileSet, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", "package p\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return fset, fn
		}
	}
	t.Fatalf("no function in %q", src)
	return nil, nil
}

// isCall matches a call whose rendered callee ends in name.
func isCall(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == name
		case *ast.SelectorExpr:
			return fun.Sel.Name == name
		}
		return false
	}
}

// findStmt returns the first statement for which f reports true.
func findStmt(body *ast.BlockStmt, f func(ast.Stmt) bool) ast.Stmt {
	var out ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if s, ok := n.(ast.Stmt); ok && f(s) {
			out = s
			return false
		}
		return true
	})
	return out
}

func TestMustReachExit(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool // every path from the open() stmt hits close()
	}{
		{"straight", `func f() { h := open(); use(h); h.close() }`, true},
		{"deferred", `func f() { h := open(); defer h.close(); use(h) }`, true},
		{"early return misses", `func f(a int) { h := open(); if a > 0 { return }; h.close() }`, false},
		{"both branches close", `func f(a int) { h := open(); if a > 0 { h.close() } else { h.close() } }`, true},
		{"one branch misses", `func f(a int) { h := open(); if a > 0 { h.close() } }`, false},
		{"loop may skip", `func f(n int) { h := open(); for i := 0; i < n; i++ { h.close() } }`, false},
		{"close after loop", `func f(n int) { h := open(); for i := 0; i < n; i++ { work() }; h.close() }`, true},
		{"panic path is vacuous", `func f(a int) { h := open(); if a > 0 { panic("x") }; h.close() }`, true},
		{"funclit does not count", `func f() { h := open(); g := func() { h.close() }; _ = g }`, false},
		{"switch all cases", `func f(a int) { h := open(); switch a { case 0: h.close(); default: h.close() } }`, true},
		{"switch missing default", `func f(a int) { h := open(); switch a { case 0: h.close() } }`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, fn := parseFunc(t, tc.src)
			g := dataflow.New(fn.Body)
			open := findStmt(fn.Body, func(s ast.Stmt) bool {
				as, ok := s.(*ast.AssignStmt)
				return ok && dataflow.Scan(as, isCall("open"))
			})
			if open == nil {
				t.Fatal("no open() statement found")
			}
			if got := g.MustReachExit(open, isCall("close")); got != tc.want {
				t.Errorf("MustReachExit = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestReachingDefs checks the solver on the typed fixture: inside
// rangeLoop's body, the use of s must see both the initial definition
// and the loop's own redefinition; after forLoop's loop, the use in
// the return must see both as well.
func TestReachingDefs(t *testing.T) {
	pkg, err := load.Fixture("testdata", "cfgtest")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "forLoop" {
				continue
			}
			g := dataflow.New(fn.Body)
			defs := dataflow.SolveReachingDefs(g, pkg.TypesInfo, fn.Type, fn.Recv, fn.Body)

			// The `return s` use: both `s := 0` and `s += i` reach it.
			ret := findStmt(fn.Body, func(s ast.Stmt) bool { _, ok := s.(*ast.ReturnStmt); return ok }).(*ast.ReturnStmt)
			use := ret.Results[0].(*ast.Ident)
			got := defs.Reaching(use)
			if len(got) != 2 {
				t.Fatalf("defs reaching `return s`: got %d, want 2 (s := 0 and s += i)", len(got))
			}

			// The parameter n's use in the loop condition reaches back
			// to the function entry (a nil-node def).
			var nUse *ast.Ident
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "n" && nUse == nil {
					nUse = id
				}
				return nUse == nil
			})
			nDefs := defs.Reaching(nUse)
			if len(nDefs) != 1 || nDefs[0].Node != nil {
				t.Fatalf("defs reaching use of parameter n: got %+v, want one entry def", nDefs)
			}
		}
	}
}
