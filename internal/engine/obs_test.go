package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"tradeoff/internal/obs"
)

// decodeTrace unmarshals a tracer's JSON export for assertions.
func decodeTrace(t *testing.T, tr *obs.Tracer) []struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TID  int            `json:"tid"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
} {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TID  int            `json:"tid"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, buf.String())
	}
	return events
}

// TestMapTracesEveryItem pins the acceptance invariant: one span per
// evaluated item, named from the context, laned by worker slot, with
// queue-wait recorded.
func TestMapTracesEveryItem(t *testing.T) {
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	ctx = obs.WithSpanName(ctx, "sweep_point")

	items := make([]int, 17)
	for i := range items {
		items[i] = i
	}
	out, err := Map(ctx, items, 3, func(_ context.Context, v int) (int, error) {
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(items) {
		t.Fatalf("%d results", len(out))
	}
	events := decodeTrace(t, tr)
	if len(events) != len(items) {
		t.Fatalf("span count = %d, want %d (one per evaluated item)", len(events), len(items))
	}
	seen := map[int]bool{}
	for _, ev := range events {
		if ev.Name != "sweep_point" || ev.Ph != "X" {
			t.Fatalf("event %+v", ev)
		}
		if ev.TID < 0 || ev.TID >= 3 {
			t.Fatalf("tid %d outside worker slots [0,3)", ev.TID)
		}
		idx := int(ev.Args["index"].(float64))
		if seen[idx] {
			t.Fatalf("item %d traced twice", idx)
		}
		seen[idx] = true
		if _, ok := ev.Args["queue_wait_us"]; !ok {
			t.Fatalf("event missing queue_wait_us: %+v", ev)
		}
	}
}

// TestMapSpansNestChildren checks that a span started inside fn lands
// on the item span's worker lane — the nesting the trace viewer
// renders.
func TestMapSpansNestChildren(t *testing.T) {
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	_, err := Map(ctx, []int{0, 1}, 1, func(ctx context.Context, v int) (int, error) {
		_, child := obs.StartSpan(ctx, "child")
		child.End()
		// fn can annotate the item span that wraps it.
		obs.CurrentSpan(ctx).SetArg("item", v)
		return v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, tr)
	if len(events) != 4 {
		t.Fatalf("span count = %d, want 4 (2 items + 2 children)", len(events))
	}
	for _, ev := range events {
		if ev.TID != 0 {
			t.Fatalf("single worker slot, but tid = %d", ev.TID)
		}
	}
}

func TestMapFeedsEngineStats(t *testing.T) {
	st := obs.NewEngineStats()
	ctx := obs.WithEngineStats(context.Background(), st)
	const n = 9
	_, err := Map(ctx, make([]int, n), 2, func(context.Context, int) (int, error) {
		time.Sleep(time.Microsecond)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Eval.Count() != n || st.QueueWait.Count() != n {
		t.Fatalf("eval count = %d, queue count = %d, want %d", st.Eval.Count(), st.QueueWait.Count(), n)
	}
	if st.Eval.Sum() <= 0 {
		t.Fatal("eval histogram saw no time")
	}
}

func TestMemoOutcomesTracedAndCounted(t *testing.T) {
	tr := obs.NewTracer()
	st := obs.NewEngineStats()
	ctx := obs.WithTracer(context.Background(), tr)
	ctx = obs.WithEngineStats(ctx, st)

	m := NewMemo[int](0, 0, nil)
	compute := func(context.Context) (int, error) { return 42, nil }

	if _, shared, _ := m.Do(ctx, "k", compute); shared {
		t.Fatal("first Do should be a miss")
	}
	if _, shared, _ := m.Do(ctx, "k", compute); !shared {
		t.Fatal("second Do should hit")
	}
	if st.MemoMiss.Value() != 1 || st.MemoHit.Value() != 1 {
		t.Fatalf("miss=%d hit=%d, want 1/1", st.MemoMiss.Value(), st.MemoHit.Value())
	}

	// Shared flight: a slow leader plus a follower on a new key.
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Do(ctx, "slow", func(context.Context) (int, error) {
			<-release
			return 7, nil
		})
	}()
	// Wait until the leader's flight is registered.
	for {
		m.mu.Lock()
		_, inflight := m.flights["slow"]
		m.mu.Unlock()
		if inflight {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Do(ctx, "slow", compute)
	}()
	time.Sleep(time.Millisecond)
	close(release)
	<-done
	wg.Wait()
	if st.MemoShared.Value() != 1 {
		t.Fatalf("shared = %d, want 1", st.MemoShared.Value())
	}

	outcomes := map[string]int{}
	for _, ev := range decodeTrace(t, tr) {
		if ev.Name != "memo" {
			t.Fatalf("span name %q", ev.Name)
		}
		outcomes[fmt.Sprint(ev.Args["outcome"])]++
	}
	want := map[string]int{"miss": 2, "hit": 1, "shared": 1}
	for k, n := range want {
		if outcomes[k] != n {
			t.Fatalf("outcomes = %v, want %v", outcomes, want)
		}
	}
}

// TestMapUninstrumentedUnchanged guards the fast path: without obs in
// the context, Map still works and no spans appear from a tracer used
// elsewhere.
func TestMapUninstrumentedUnchanged(t *testing.T) {
	out, err := Map(context.Background(), []int{1, 2, 3}, 2, func(_ context.Context, v int) (int, error) {
		return v + 1, nil
	})
	if err != nil || len(out) != 3 || out[0] != 2 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}
