package engine

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func bytesSize(v []byte) int64 { return int64(len(v)) }

func TestMemoHitAndMiss(t *testing.T) {
	m := NewMemo[[]byte](4, 0, bytesSize)
	calls := 0
	fn := func(context.Context) ([]byte, error) { calls++; return []byte("v"), nil }
	v, shared, err := m.Do(context.Background(), "k", fn)
	if err != nil || shared || string(v) != "v" {
		t.Fatalf("first Do = %q, shared=%v, err=%v", v, shared, err)
	}
	v, shared, err = m.Do(context.Background(), "k", fn)
	if err != nil || !shared || string(v) != "v" {
		t.Fatalf("second Do = %q, shared=%v, err=%v", v, shared, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

func TestMemoEntryEviction(t *testing.T) {
	m := NewMemo[[]byte](2, 0, bytesSize)
	m.Put("a", []byte("a"))
	m.Put("b", []byte("b"))
	m.Get("a") // refresh a; b is now LRU
	m.Put("c", []byte("c"))
	if _, ok := m.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := m.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
}

// TestMemoByteBound checks the cache evicts by total value bytes, not
// just entry count, and that Bytes() tracks the live total.
func TestMemoByteBound(t *testing.T) {
	m := NewMemo[[]byte](0, 100, bytesSize)
	m.Put("a", make([]byte, 40))
	m.Put("b", make([]byte, 40))
	if got := m.Bytes(); got != 80 {
		t.Fatalf("bytes = %d, want 80", got)
	}
	m.Put("c", make([]byte, 40)) // 120 > 100: evicts a
	if _, ok := m.Get("a"); ok {
		t.Fatal("a should have been evicted by the byte bound")
	}
	if got, n := m.Bytes(), m.Len(); got != 80 || n != 2 {
		t.Fatalf("bytes = %d len = %d, want 80 and 2", got, n)
	}
	// A value alone too large for the budget is returned but not cached.
	m.Put("huge", make([]byte, 500))
	if _, ok := m.Get("huge"); ok {
		t.Fatal("an over-budget value was cached")
	}
	if got := m.Bytes(); got > 100 {
		t.Fatalf("bytes = %d exceeds the bound", got)
	}
}

// TestMemoSingleflight is the contract the service's endpoint dedup
// rides on: N concurrent Do calls for one key run fn exactly once, and
// every caller sees the same value.
func TestMemoSingleflight(t *testing.T) {
	m := NewMemo[[]byte](4, 0, bytesSize)
	const n = 32
	var (
		calls   atomic.Int64
		entered = make(chan struct{})
		release = make(chan struct{})
		wg      sync.WaitGroup
	)
	fn := func(context.Context) ([]byte, error) {
		calls.Add(1)
		close(entered) // fn runs once; a second close would panic the test
		<-release      // hold every joiner in-flight until all have arrived
		return []byte("shared"), nil
	}
	results := make([][]byte, n)
	sharedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := m.Do(context.Background(), "k", fn)
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Wait until one caller is inside fn, then release it.
	<-entered
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times for %d concurrent callers, want 1", calls.Load(), n)
	}
	if sharedCount.Load() != n-1 {
		t.Fatalf("%d callers saw a shared result, want %d", sharedCount.Load(), n-1)
	}
	for i := range results {
		if string(results[i]) != "shared" {
			t.Fatalf("caller %d got %q", i, results[i])
		}
	}
}

// TestMemoErrorNotCached checks a failed computation is retried, not
// memoized.
func TestMemoErrorNotCached(t *testing.T) {
	m := NewMemo[[]byte](4, 0, bytesSize)
	boom := errors.New("boom")
	calls := 0
	_, _, err := m.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		calls++
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, shared, err := m.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		calls++
		return []byte("ok"), nil
	})
	if err != nil || shared || string(v) != "ok" {
		t.Fatalf("retry = %q, shared=%v, err=%v", v, shared, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2", calls)
	}
}

// TestMemoCancelledLeaderHandsOver checks a waiter whose context is
// still live takes over when the computing caller dies of its own
// cancellation, instead of inheriting the cancellation error.
func TestMemoCancelledLeaderHandsOver(t *testing.T) {
	m := NewMemo[[]byte](4, 0, bytesSize)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inFlight := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := m.Do(leaderCtx, "k", func(ctx context.Context) ([]byte, error) {
			close(inFlight)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want context.Canceled", err)
		}
	}()

	<-inFlight
	waiterDone := make(chan error, 1)
	ran := false
	go func() {
		_, _, err := m.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
			ran = true
			return []byte("rescued"), nil
		})
		waiterDone <- err
	}()
	// The waiter is parked on the leader's flight; cancel the leader.
	cancelLeader()
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter err = %v, want nil (hand-over)", err)
	}
	if !ran {
		t.Fatal("waiter never took over the computation")
	}
	wg.Wait()
	if v, ok := m.Get("k"); !ok || string(v) != "rescued" {
		t.Fatalf("cache holds %q, %v; want the waiter's value", v, ok)
	}
}

func TestWriteCSV(t *testing.T) {
	var b1, b2 bytes.Buffer
	rows := [][]string{{"1", "a,b"}, {"2", `quo"te`}}
	if err := WriteCSV(&b1, []string{"n", "s"}, len(rows), func(i int) []string { return rows[i] }); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSVRows(&b2, []string{"n", "s"}, rows); err != nil {
		t.Fatal(err)
	}
	want := "n,s\n1,\"a,b\"\n2,\"quo\"\"te\"\n"
	if b1.String() != want || b2.String() != b1.String() {
		t.Fatalf("CSV = %q / %q, want %q", b1.String(), b2.String(), want)
	}
}
