// Package engine is the repo's single parallel execution layer: a
// generic slot-indexed bounded worker pool (Map), a byte-bounded
// memoization cache with singleflight (Memo), and the shared CSV
// encoder every table-shaped output goes through.
//
// Before this package, sweep.Run, simjob, and the experiments driver
// each hand-rolled the same pool, and the service kept its own LRU;
// they now all sit on engine, so pool semantics — deterministic
// output order, first-error propagation, context cancellation — are
// defined (and tested) exactly once.
//
// The engine is also where observability hooks live, so every
// consumer gets them for free: when the context carries an
// obs.Tracer, Map wraps each item in a span (one lane per worker
// slot, queue-wait recorded as an arg) and Memo wraps each Do in a
// span tagged hit / miss / shared; when it carries obs.EngineStats,
// Map feeds the queue-wait and evaluation histograms and Memo the
// flight-outcome counters. Without either, the only cost is a couple
// of context lookups per call.
package engine

import (
	"context"
	"runtime"
	"sync"
	"time"

	"tradeoff/internal/obs"
)

// Map applies fn to every item on a bounded worker pool and returns
// the results in item order — byte-identical to a serial loop
// regardless of worker count or completion order, because each worker
// writes into its item's slot. workers <= 0 selects runtime.NumCPU().
//
// The first error wins: it cancels the pool's context, in-flight calls
// may observe the cancellation, queued items are never started, and
// Map returns that error. Cancelling ctx stops the pool the same way
// and Map returns ctx.Err(). fn receives the pool's derived context so
// long-running work can stop early.
func Map[T, R any](ctx context.Context, items []T, workers int, fn func(context.Context, T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(items) {
		workers = len(items)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Observability: a Tracer in the context gets one span per item
	// (lane = worker slot, queue wait as an arg); EngineStats gets the
	// queue-wait and evaluation histograms fed. Both are nil-cheap.
	tracer := obs.TracerFrom(ctx)
	stats := obs.EngineStatsFrom(ctx)
	instrumented := tracer != nil || stats != nil
	var mapStart time.Time
	var spanName string
	if instrumented {
		mapStart = time.Now()
		spanName = obs.SpanName(ctx, "map")
	}

	// Workers pull indices from jobs and write to their slot in out, so
	// completion order never affects output order.
	out := make([]R, len(items))
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				fctx := ctx
				var picked time.Time
				var span *obs.Span
				if instrumented {
					picked = time.Now()
					wait := picked.Sub(mapStart)
					if stats != nil {
						stats.QueueWait.Observe(wait)
					}
					if tracer != nil {
						fctx, span = obs.StartSpan(ctx, spanName)
						span.SetTID(slot)
						span.SetArg("index", i)
						span.SetArg("queue_wait_us", wait.Microseconds())
					}
				}
				r, err := fn(fctx, items[i])
				span.End()
				if stats != nil {
					stats.Eval.Observe(time.Since(picked))
				}
				if err != nil {
					fail(err)
					return
				}
				out[i] = r
			}
		}(w)
	}
feed:
	for i := range items {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
