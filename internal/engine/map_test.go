package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapMatchesSerial is the pool's property test: for random inputs
// and any worker count, Map's output equals the serial loop's, element
// for element.
func TestMapMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(50)
		items := make([]int, n)
		for i := range items {
			items[i] = rng.Intn(1000)
		}
		fn := func(_ context.Context, v int) (int, error) { return v*v + 1, nil }

		want := make([]int, n)
		for i, v := range items {
			want[i], _ = fn(context.Background(), v)
		}
		for _, workers := range []int{1, 2, 7, 0} {
			got, err := Map(context.Background(), items, workers, fn)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d workers %d: got[%d] = %d, want %d", trial, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMapEmpty checks a zero-item map returns an empty result, not an
// error or a hang.
func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), nil, 4, func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(nil) = %v, %v", got, err)
	}
}

// TestMapFirstErrorWins checks a failing item cancels the pool, the
// failure's error is returned, and not every item runs.
func TestMapFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	var ran atomic.Int64
	_, err := Map(context.Background(), items, 4, func(ctx context.Context, v int) (int, error) {
		ran.Add(1)
		if v == 3 {
			return 0, fmt.Errorf("item %d: %w", v, boom)
		}
		return v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ran.Load(); n == int64(len(items)) {
		t.Fatalf("all %d items ran despite an early failure", n)
	}
}

// TestMapCancelDrains checks cancelling ctx mid-run stops the pool,
// returns ctx.Err(), and every worker exits (no goroutine keeps
// feeding after Map returns).
func TestMapCancelDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 10_000)
	var started atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(ctx, items, 4, func(ctx context.Context, v int) (int, error) {
			if started.Add(1) == 8 {
				cancel()
			}
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return v, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not drain after cancellation")
	}
	cancel()
	after := started.Load()
	time.Sleep(10 * time.Millisecond)
	if started.Load() != after {
		t.Fatal("items kept starting after Map returned")
	}
	if after == int64(len(items)) {
		t.Fatal("cancellation did not stop the feed early")
	}
}

// TestMapAlreadyCancelled checks an already-dead context runs nothing.
func TestMapAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := Map(ctx, make([]int, 100), 4, func(context.Context, int) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran under a pre-cancelled context", ran.Load())
	}
}
