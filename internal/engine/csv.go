package engine

import (
	"encoding/csv"
	"io"
)

// WriteCSV emits a header row followed by n records produced by
// row(i), in order, through one encoding/csv writer — the single CSV
// emitter behind sweep.WriteCSV, simjob.WriteCSV and the plot
// package's chart/table writers, so quoting and line-ending rules
// cannot drift between them.
func WriteCSV(w io.Writer, header []string, n int, row func(i int) []string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := cw.Write(row(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVRows is WriteCSV over pre-built records.
func WriteCSVRows(w io.Writer, header []string, rows [][]string) error {
	return WriteCSV(w, header, len(rows), func(i int) []string { return rows[i] })
}
