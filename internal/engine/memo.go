package engine

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"tradeoff/internal/obs"
)

// Memo is a string-keyed memoization cache with LRU eviction bounded
// by entry count and by total value bytes, plus singleflight: while
// one caller computes a key, concurrent callers for the same key wait
// for that one computation instead of repeating it.
//
// Values are cached only on success; a failed computation is retried
// by the next caller. If the computing caller is cancelled, a waiting
// caller whose own context is still live takes over the computation
// rather than inheriting the cancellation.
type Memo[V any] struct {
	maxEntries int
	maxBytes   int64
	size       func(V) int64

	mu      sync.Mutex
	bytes   int64
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	flights map[string]*flight[V]
}

type memoEntry[V any] struct {
	key   string
	val   V
	bytes int64
}

// flight is one in-progress computation; done closes when it settles.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewMemo returns a Memo bounded to maxEntries entries and maxBytes
// total value bytes as reported by size. A bound <= 0 means unlimited
// on that axis; a nil size prices every value at zero bytes (so only
// the entry bound applies).
func NewMemo[V any](maxEntries int, maxBytes int64, size func(V) int64) *Memo[V] {
	return &Memo[V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		size:       size,
		order:      list.New(),
		entries:    make(map[string]*list.Element),
		flights:    make(map[string]*flight[V]),
	}
}

// Memo.Do outcomes, recorded on spans and EngineStats counters.
const (
	outcomeHit    = "hit"    // served from the cache
	outcomeShared = "shared" // joined another caller's in-flight computation
	outcomeMiss   = "miss"   // computed by this call
	outcomeCancel = "cancel" // caller's context ended while waiting
)

// Do returns the memoized value for key, computing it with fn on a
// miss. The boolean reports whether the value was shared — served from
// cache or from another caller's in-flight computation — versus
// computed by this call. Identical concurrent keys run fn exactly
// once.
//
// When the context carries an obs.Tracer, the whole Do — including
// time spent waiting on another caller's flight — is one span with an
// "outcome" arg; obs.EngineStats counters tally hits, misses and
// shared flights.
func (m *Memo[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, bool, error) {
	tracer, stats := obs.TracerFrom(ctx), obs.EngineStatsFrom(ctx)
	if tracer == nil && stats == nil {
		v, outcome, err := m.do(ctx, key, fn)
		return v, outcome != outcomeMiss, err
	}
	ctx, span := obs.StartSpan(ctx, "memo")
	v, outcome, err := m.do(ctx, key, fn)
	span.SetArg("outcome", outcome)
	span.End()
	if stats != nil {
		switch outcome {
		case outcomeHit:
			stats.MemoHit.Add(1)
		case outcomeMiss:
			stats.MemoMiss.Add(1)
		case outcomeShared:
			stats.MemoShared.Add(1)
		}
	}
	return v, outcome != outcomeMiss, err
}

// do is Do without instrumentation; the string return is the outcome.
func (m *Memo[V]) do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, string, error) {
	for {
		m.mu.Lock()
		if el, ok := m.entries[key]; ok {
			m.order.MoveToFront(el)
			v := el.Value.(*memoEntry[V]).val
			m.mu.Unlock()
			return v, outcomeHit, nil
		}
		if f, inflight := m.flights[key]; inflight {
			m.mu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					return f.val, outcomeShared, nil
				}
				// The computing caller failed. If it was torn down by its
				// own cancellation and we are still live, take over.
				if isCancellation(f.err) && ctx.Err() == nil {
					continue
				}
				var zero V
				return zero, outcomeShared, f.err
			case <-ctx.Done():
				var zero V
				return zero, outcomeCancel, ctx.Err()
			}
		}
		f := &flight[V]{done: make(chan struct{})}
		m.flights[key] = f
		m.mu.Unlock()

		f.val, f.err = fn(ctx)

		m.mu.Lock()
		delete(m.flights, key)
		if f.err == nil {
			m.add(key, f.val)
		}
		m.mu.Unlock()
		close(f.done)
		return f.val, outcomeMiss, f.err
	}
}

// Get returns the cached value for key, refreshing its recency.
func (m *Memo[V]) Get(key string) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*memoEntry[V]).val, true
}

// Put stores a value directly, evicting LRU entries over either bound.
func (m *Memo[V]) Put(key string, val V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.add(key, val)
}

// add inserts or refreshes key under m.mu, then evicts from the LRU
// end until both bounds hold. An entry alone too large for the byte
// budget is evicted immediately — returned to its caller but never
// cached.
//
//lockguard:held mu
func (m *Memo[V]) add(key string, val V) {
	var n int64
	if m.size != nil {
		n = m.size(val)
	}
	if el, ok := m.entries[key]; ok {
		e := el.Value.(*memoEntry[V])
		m.bytes += n - e.bytes
		e.val, e.bytes = val, n
		m.order.MoveToFront(el)
	} else {
		m.entries[key] = m.order.PushFront(&memoEntry[V]{key: key, val: val, bytes: n})
		m.bytes += n
	}
	for m.order.Len() > 0 &&
		((m.maxEntries > 0 && m.order.Len() > m.maxEntries) ||
			(m.maxBytes > 0 && m.bytes > m.maxBytes)) {
		oldest := m.order.Back()
		e := oldest.Value.(*memoEntry[V])
		m.order.Remove(oldest)
		delete(m.entries, e.key)
		m.bytes -= e.bytes
	}
}

// Len returns the current entry count.
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Bytes returns the summed size of all cached values.
func (m *Memo[V]) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// isCancellation reports whether err is a context teardown rather than
// a real computation failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
