// Package memory models the main-memory and bus timing of the paper.
//
// The memory system transfers D bytes (the external data-bus width) per
// memory cycle of βm processor clocks, with the same cycle time for
// reads and writes (§3.1 assumption 6). A line fill of L bytes therefore
// takes (L/D)·βm cycles non-pipelined, or — when the memory system is
// pipelined with readiness interval q — βp = βm + q·(L/D − 1) cycles
// (Eq. (9) of Chen & Somani, ISCA '94).
//
// The model exposes per-chunk arrival times so the stall engine in
// internal/stall can decide, for each processor access during a fill,
// whether the bytes it needs have arrived (the distinction between the
// BNL2/BNL3 stalling features and BL/BNL1).
package memory

import "fmt"

// FillOrder selects the order in which a line's chunks arrive.
type FillOrder int

const (
	// RequestedFirst delivers the chunk the processor asked for first,
	// then wraps around the line — the paper's §3.2 behaviour ("the
	// cache first requests the missed data from the memory").
	RequestedFirst FillOrder = iota
	// Sequential delivers chunks in address order regardless of which
	// word missed, as simpler memory controllers do. Used by the
	// fill-order ablation: the requested word then arrives late for
	// misses near the end of a line.
	Sequential
)

func (f FillOrder) String() string {
	switch f {
	case RequestedFirst:
		return "requested-first"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("FillOrder(%d)", int(f))
	}
}

// Config describes one memory system design point.
type Config struct {
	BetaM     int64     // memory cycle time βm, in processor clocks per D-byte transfer
	BusWidth  int       // external data-bus width D, in bytes (4, 8, 16 or 32)
	Pipelined bool      // whether back-to-back requests pipeline
	Q         int64     // readiness interval q: clocks before the next pipelined request may begin
	Order     FillOrder // chunk delivery order (default RequestedFirst)
}

// Validate checks the configuration. The paper restricts D to
// {4, 8, 16, 32} (Table 1) and plots βm ≥ 2 (the "design limit", §5.1).
func (c Config) Validate() error {
	switch c.BusWidth {
	case 4, 8, 16, 32:
	default:
		return fmt.Errorf("memory: bus width %d, want one of 4, 8, 16, 32", c.BusWidth)
	}
	if c.BetaM < 1 {
		return fmt.Errorf("memory: βm = %d, want >= 1", c.BetaM)
	}
	if c.Pipelined && c.Q < 1 {
		return fmt.Errorf("memory: pipelined with q = %d, want >= 1", c.Q)
	}
	return nil
}

// Model computes fill and write timings for a configuration. The zero
// value is not usable; construct with New.
type Model struct {
	cfg Config
}

// New returns a Model for cfg, or an error if cfg is invalid.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Chunks returns the number of bus transfers needed for lineSize bytes
// (L/D, minimum 1).
func (m *Model) Chunks(lineSize int) int {
	n := lineSize / m.cfg.BusWidth
	if n < 1 {
		n = 1
	}
	return n
}

// LineTime returns the total cycles to move an L-byte line: (L/D)·βm
// non-pipelined, or Eq. (9)'s βp = βm + q·(L/D − 1) pipelined.
func (m *Model) LineTime(lineSize int) int64 {
	n := int64(m.Chunks(lineSize))
	if m.cfg.Pipelined {
		return m.cfg.BetaM + m.cfg.Q*(n-1)
	}
	return n * m.cfg.BetaM
}

// WriteTime returns the cycles for a single write of size bytes. Writes
// no wider than the bus take one memory cycle; wider writes take one
// cycle per bus-width piece (the W decomposition in Table 1).
func (m *Model) WriteTime(size int) int64 {
	if size <= m.cfg.BusWidth {
		return m.cfg.BetaM
	}
	return int64((size+m.cfg.BusWidth-1)/m.cfg.BusWidth) * m.cfg.BetaM
}

// Fill is a scheduled line fill: it knows when each D-byte chunk of the
// line arrives, in requested-word-first order. With a bus-locked or
// bus-not-locked cache the processor resumes when the requested chunk
// arrives, while the rest of the line streams in (§3.2).
type Fill struct {
	Start     int64  // cycle the fill was requested
	Line      uint64 // line index being filled
	chunks    int    // number of D-byte chunks
	critical  int    // chunk index (within the line) the processor asked for
	betaM     int64
	q         int64
	pipelined bool
	order     FillOrder
}

// NewFill schedules a fill for the lineSize-byte line containing the
// requested chunk criticalChunk (0-based chunk index within the line,
// i.e. offsetInLine / D). Chunks are delivered starting at the critical
// chunk and wrapping around the line.
func (m *Model) NewFill(start int64, lineIndex uint64, lineSize, criticalChunk int) Fill {
	n := m.Chunks(lineSize)
	return Fill{
		Start:     start,
		Line:      lineIndex,
		chunks:    n,
		critical:  wrapChunk(criticalChunk, n),
		betaM:     m.cfg.BetaM,
		q:         m.cfg.Q,
		pipelined: m.cfg.Pipelined,
		order:     m.cfg.Order,
	}
}

// arrivalByOrder returns the cycle at which the k-th delivered chunk
// (k = 0 is the critical chunk) arrives.
func (f Fill) arrivalByOrder(k int) int64 {
	if f.pipelined {
		return f.Start + f.betaM + int64(k)*f.q
	}
	return f.Start + int64(k+1)*f.betaM
}

// Complete returns the cycle at which the entire line has arrived.
func (f Fill) Complete() int64 { return f.arrivalByOrder(f.chunks - 1) }

// CriticalReady returns the cycle at which the requested chunk arrives
// (the earliest moment a BL/BNL cache lets the processor continue).
// Under a Sequential fill the requested word may arrive late.
func (f Fill) CriticalReady() int64 { return f.ChunkReady(f.critical) }

// ChunkReady returns the cycle at which chunk index c (within the
// line) arrives, under the fill's delivery order. Out-of-range input
// — including a negative index from a sign-truncated address offset on
// a 32-bit platform — is wrapped into the line, so the result is never
// earlier than the first chunk's arrival.
func (f Fill) ChunkReady(c int) int64 {
	c = wrapChunk(c, f.chunks)
	if f.order == Sequential {
		return f.arrivalByOrder(c)
	}
	order := c - f.critical
	if order < 0 {
		order += f.chunks
	}
	return f.arrivalByOrder(order)
}

// wrapChunk reduces a chunk index into [0, chunks), mapping negative
// input (Go's % keeps the dividend's sign) into the line instead of
// letting it produce an arrival time before the fill started.
func wrapChunk(c, chunks int) int {
	c %= chunks
	if c < 0 {
		c += chunks
	}
	return c
}

// ByteReady returns the cycle at which the byte at offsetInLine is
// available, given the bus width used to schedule the fill.
func (f Fill) ByteReady(offsetInLine, busWidth int) int64 {
	return f.ChunkReady(offsetInLine / busWidth)
}

// Chunks returns the number of chunks in the fill.
func (f Fill) Chunks() int { return f.chunks }
