package memory

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid 4-byte", Config{BetaM: 4, BusWidth: 4}, true},
		{"valid 32-byte pipelined", Config{BetaM: 10, BusWidth: 32, Pipelined: true, Q: 2}, true},
		{"bad width 3", Config{BetaM: 4, BusWidth: 3}, false},
		{"bad width 64", Config{BetaM: 4, BusWidth: 64}, false},
		{"zero beta", Config{BetaM: 0, BusWidth: 4}, false},
		{"pipelined without q", Config{BetaM: 4, BusWidth: 4, Pipelined: true}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestChunks(t *testing.T) {
	m := MustNew(Config{BetaM: 4, BusWidth: 4})
	if got := m.Chunks(32); got != 8 {
		t.Fatalf("Chunks(32) = %d, want 8", got)
	}
	if got := m.Chunks(4); got != 1 {
		t.Fatalf("Chunks(4) = %d, want 1", got)
	}
	if got := m.Chunks(2); got != 1 {
		t.Fatalf("Chunks(2) = %d, want 1 (sub-bus line)", got)
	}
}

func TestLineTimeNonPipelined(t *testing.T) {
	m := MustNew(Config{BetaM: 5, BusWidth: 4})
	if got := m.LineTime(32); got != 40 {
		t.Fatalf("LineTime(32) = %d, want (32/4)*5 = 40", got)
	}
}

func TestLineTimeEq9(t *testing.T) {
	// Eq. (9): βp = βm + q(L/D − 1).
	m := MustNew(Config{BetaM: 5, BusWidth: 4, Pipelined: true, Q: 2})
	if got := m.LineTime(32); got != 5+2*7 {
		t.Fatalf("pipelined LineTime(32) = %d, want 19", got)
	}
	// L = D: pipelining must make no difference (paper §4.4).
	if got, want := m.LineTime(4), MustNew(Config{BetaM: 5, BusWidth: 4}).LineTime(4); got != want {
		t.Fatalf("L=D pipelined %d != non-pipelined %d", got, want)
	}
}

func TestPipeliningNeverSlower(t *testing.T) {
	// For q <= βm, the pipelined fill never takes longer.
	f := func(beta, q uint8, lineExp uint8) bool {
		b := int64(beta%30) + 1
		qq := int64(q)%b + 1    // 1..b
		L := 4 << (lineExp % 4) // 4..32
		np := MustNew(Config{BetaM: b, BusWidth: 4})
		p := MustNew(Config{BetaM: b, BusWidth: 4, Pipelined: true, Q: qq})
		return p.LineTime(L) <= np.LineTime(L)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTime(t *testing.T) {
	m := MustNew(Config{BetaM: 6, BusWidth: 4})
	if got := m.WriteTime(4); got != 6 {
		t.Fatalf("WriteTime(4) = %d, want 6", got)
	}
	if got := m.WriteTime(1); got != 6 {
		t.Fatalf("WriteTime(1) = %d, want 6 (sub-bus write still one cycle)", got)
	}
	if got := m.WriteTime(8); got != 12 {
		t.Fatalf("WriteTime(8) = %d, want 12 (two bus pieces)", got)
	}
	if got := m.WriteTime(10); got != 18 {
		t.Fatalf("WriteTime(10) = %d, want 18 (three pieces, rounded up)", got)
	}
}

func TestFillChunkOrderNonPipelined(t *testing.T) {
	m := MustNew(Config{BetaM: 10, BusWidth: 4})
	// 32-byte line = 8 chunks; critical chunk 5.
	f := m.NewFill(100, 7, 32, 5)
	if f.Chunks() != 8 {
		t.Fatalf("chunks = %d, want 8", f.Chunks())
	}
	if got := f.CriticalReady(); got != 110 {
		t.Fatalf("critical ready at %d, want 110", got)
	}
	if got := f.ChunkReady(5); got != 110 {
		t.Fatalf("chunk 5 ready at %d, want 110", got)
	}
	// Wrap-around order: 5,6,7,0,1,2,3,4.
	if got := f.ChunkReady(6); got != 120 {
		t.Fatalf("chunk 6 ready at %d, want 120", got)
	}
	if got := f.ChunkReady(0); got != 100+4*10 {
		t.Fatalf("chunk 0 ready at %d, want 140", got)
	}
	if got := f.ChunkReady(4); got != 100+8*10 {
		t.Fatalf("chunk 4 ready at %d, want 180", got)
	}
	if got := f.Complete(); got != 180 {
		t.Fatalf("complete at %d, want 180", got)
	}
}

func TestFillPipelinedSchedule(t *testing.T) {
	m := MustNew(Config{BetaM: 10, BusWidth: 4, Pipelined: true, Q: 2})
	f := m.NewFill(0, 0, 32, 0)
	if got := f.CriticalReady(); got != 10 {
		t.Fatalf("critical at %d, want 10", got)
	}
	if got := f.ChunkReady(1); got != 12 {
		t.Fatalf("chunk 1 at %d, want 12", got)
	}
	if got := f.Complete(); got != 10+2*7 {
		t.Fatalf("complete at %d, want 24 (Eq. 9)", got)
	}
}

func TestFillByteReady(t *testing.T) {
	m := MustNew(Config{BetaM: 10, BusWidth: 4})
	f := m.NewFill(0, 0, 32, 0)
	if got := f.ByteReady(0, 4); got != 10 {
		t.Fatalf("byte 0 at %d, want 10", got)
	}
	if got := f.ByteReady(3, 4); got != 10 {
		t.Fatalf("byte 3 at %d, want 10 (same chunk)", got)
	}
	if got := f.ByteReady(4, 4); got != 20 {
		t.Fatalf("byte 4 at %d, want 20", got)
	}
	if got := f.ByteReady(31, 4); got != 80 {
		t.Fatalf("byte 31 at %d, want 80", got)
	}
}

func TestFillCriticalModuloChunks(t *testing.T) {
	m := MustNew(Config{BetaM: 3, BusWidth: 4})
	f := m.NewFill(0, 0, 16, 9) // 4 chunks, critical 9%4 = 1
	if got := f.ChunkReady(1); got != 3 {
		t.Fatalf("chunk 1 at %d, want 3", got)
	}
}

func TestFillCompleteMatchesLineTime(t *testing.T) {
	// Property: Complete - Start == LineTime for any geometry, and the
	// critical chunk is always the first to arrive.
	f := func(beta, q uint8, lineExp, crit uint8, pipe bool) bool {
		b := int64(beta%20) + 1
		qq := int64(q%8) + 1
		L := 4 << (lineExp % 4)
		cfg := Config{BetaM: b, BusWidth: 4, Pipelined: pipe, Q: qq}
		m := MustNew(cfg)
		fl := m.NewFill(1000, 1, L, int(crit))
		if fl.Complete()-fl.Start != m.LineTime(L) {
			return false
		}
		first := fl.CriticalReady()
		for c := 0; c < fl.Chunks(); c++ {
			if fl.ChunkReady(c) < first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllChunksDistinctArrivals(t *testing.T) {
	m := MustNew(Config{BetaM: 7, BusWidth: 8})
	f := m.NewFill(0, 0, 64, 3)
	seen := map[int64]bool{}
	for c := 0; c < f.Chunks(); c++ {
		at := f.ChunkReady(c)
		if seen[at] {
			t.Fatalf("two chunks arrive at cycle %d", at)
		}
		seen[at] = true
	}
	if len(seen) != 8 {
		t.Fatalf("%d distinct arrivals, want 8", len(seen))
	}
}

func TestSequentialFillOrder(t *testing.T) {
	m := MustNew(Config{BetaM: 10, BusWidth: 4, Order: Sequential})
	// 32-byte line, critical chunk 5: under sequential delivery chunk 0
	// arrives first and the requested word waits six transfers.
	f := m.NewFill(0, 0, 32, 5)
	if got := f.ChunkReady(0); got != 10 {
		t.Fatalf("chunk 0 at %d, want 10", got)
	}
	if got := f.CriticalReady(); got != 60 {
		t.Fatalf("critical (chunk 5) at %d, want 60", got)
	}
	if got := f.Complete(); got != 80 {
		t.Fatalf("complete at %d, want 80", got)
	}
}

func TestSequentialNeverFasterForCritical(t *testing.T) {
	// Property: the requested word never arrives earlier under a
	// sequential fill than under requested-first delivery.
	f := func(beta uint8, crit uint8, lineExp uint8) bool {
		b := int64(beta%20) + 1
		L := 8 << (lineExp % 3)
		rf := MustNew(Config{BetaM: b, BusWidth: 4}).NewFill(0, 0, L, int(crit))
		sq := MustNew(Config{BetaM: b, BusWidth: 4, Order: Sequential}).NewFill(0, 0, L, int(crit))
		return sq.CriticalReady() >= rf.CriticalReady() && sq.Complete() == rf.Complete()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFillOrderString(t *testing.T) {
	if RequestedFirst.String() != "requested-first" || Sequential.String() != "sequential" {
		t.Fatal("FillOrder.String wrong")
	}
	if FillOrder(7).String() != "FillOrder(7)" {
		t.Fatal("unknown FillOrder String wrong")
	}
}

func TestChunkReadyWrapsNegativeInput(t *testing.T) {
	// Regression: a sign-truncated line offset (int(addr) on a 32-bit
	// platform for addresses >= 2^31) can hand ChunkReady a negative
	// chunk index. It must wrap into the line — never yielding an
	// arrival at or before the fill's start — and agree with the
	// congruent non-negative index under both delivery orders.
	for _, order := range []FillOrder{RequestedFirst, Sequential} {
		m := MustNew(Config{BetaM: 10, BusWidth: 4, Order: order})
		f := m.NewFill(100, 0, 32, 2)
		for c := -16; c < 16; c++ {
			pos := ((c % 8) + 8) % 8
			if got, want := f.ChunkReady(c), f.ChunkReady(pos); got != want {
				t.Fatalf("%v: ChunkReady(%d) = %d, want ChunkReady(%d) = %d", order, c, got, pos, want)
			}
			if got := f.ChunkReady(c); got <= f.Start {
				t.Fatalf("%v: ChunkReady(%d) = %d, at or before fill start %d", order, c, got, f.Start)
			}
		}
	}
}

func TestNewFillNegativeCriticalChunk(t *testing.T) {
	// A negative critical chunk (same truncation source) must schedule
	// like its congruent in-line chunk.
	m := MustNew(Config{BetaM: 10, BusWidth: 4})
	neg := m.NewFill(0, 0, 32, -3)
	pos := m.NewFill(0, 0, 32, 5)
	if neg.CriticalReady() != pos.CriticalReady() || neg.Complete() != pos.Complete() {
		t.Fatalf("critical -3 schedules unlike critical 5: %d/%d vs %d/%d",
			neg.CriticalReady(), neg.Complete(), pos.CriticalReady(), pos.Complete())
	}
}
