package linesize

import (
	"math"
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/missratio"
	"tradeoff/internal/trace"
)

// figure6Configs returns the four design points of Figure 6 with the
// candidate lines the paper plots (16..128 plus an 8-byte base).
func figure6Configs() []Config {
	lines := []int{8, 16, 32, 64, 128}
	return []Config{
		{CacheSize: 16 << 10, BusWidth: 4, LatencyNS: 360, NSPerByte: 15, Lines: lines},
		{CacheSize: 16 << 10, BusWidth: 8, LatencyNS: 160, NSPerByte: 15, Lines: lines},
		{CacheSize: 16 << 10, BusWidth: 8, LatencyNS: 600, NSPerByte: 4, Lines: lines},
		{CacheSize: 8 << 10, BusWidth: 8, LatencyNS: 360, NSPerByte: 15, Lines: lines},
	}
}

func TestConfigValidate(t *testing.T) {
	good := figure6Configs()[0]
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{CacheSize: 0, BusWidth: 4, LatencyNS: 1, NSPerByte: 1, Lines: []int{8, 16}},
		{CacheSize: 1024, BusWidth: 0, LatencyNS: 1, NSPerByte: 1, Lines: []int{8, 16}},
		{CacheSize: 1024, BusWidth: 4, LatencyNS: 0, NSPerByte: 1, Lines: []int{8, 16}},
		{CacheSize: 1024, BusWidth: 4, LatencyNS: 1, NSPerByte: 1, Lines: []int{8}},
		{CacheSize: 1024, BusWidth: 4, LatencyNS: 1, NSPerByte: 1, Lines: []int{16, 8}},
		{CacheSize: 1024, BusWidth: 8, LatencyNS: 1, NSPerByte: 1, Lines: []int{4, 16}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLambdaMatchesSubcaptions(t *testing.T) {
	// The paper's subcaption constants: (d) "c = 6+1" at β = 2 means
	// λ·2 = 6, λ = 3; (b) "c = 4+1" at β = 3 means λ = 4/3.
	cfgs := figure6Configs()
	if got := cfgs[3].Lambda(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("(d) λ = %g, want 3", got)
	}
	if got := cfgs[1].Lambda(); math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("(b) λ = %g, want 4/3", got)
	}
	if got := cfgs[0].CAt(2); math.Abs(got-13) > 1e-12 {
		t.Fatalf("(a) c at β=2 = %g, want 1+6·2 = 13", got)
	}
}

func TestSmithOptimalMatchesPaperQuotes(t *testing.T) {
	// Figure 6 subcaptions: the line Smith's criterion picks at the
	// quoted design beta for each config.
	m := missratio.DefaultModel()
	cfgs := figure6Configs()
	cases := []struct {
		cfg  Config
		beta float64
		want []int
	}{
		{cfgs[0], 2, []int{32}},
		{cfgs[1], 3, []int{16}},
		{cfgs[2], 1, []int{64, 128}},
		{cfgs[3], 2, []int{32}},
	}
	for i, tc := range cases {
		got, err := SmithOptimal(m, tc.cfg, tc.beta)
		if err != nil {
			t.Fatal(err)
		}
		ok := false
		for _, w := range tc.want {
			ok = ok || got == w
		}
		if !ok {
			t.Errorf("config %d: Smith optimal %d, want one of %v", i, got, tc.want)
		}
	}
}

func TestEq19MatchesSmithEverywhere(t *testing.T) {
	// §5.4.2's validation: "The optimal line sizes determined by
	// Eq. (19) exactly match with those of Smith's work" — across all
	// four configs and the full β range of Figure 6.
	m := missratio.DefaultModel()
	for i, cfg := range figure6Configs() {
		for beta := 0.5; beta <= 10; beta += 0.5 {
			smith, err := SmithOptimal(m, cfg, beta)
			if err != nil {
				t.Fatal(err)
			}
			eq19, err := Eq19Optimal(m, cfg, beta)
			if err != nil {
				t.Fatal(err)
			}
			if smith != eq19 {
				t.Fatalf("config %d β=%g: Smith picks %d, Eq. 19 picks %d", i, beta, smith, eq19)
			}
		}
	}
}

func TestMeanDelayOptimalAgreesWithSmith(t *testing.T) {
	// Eq. (15) vs Eq. (16): same optimum because hit cycles are equal.
	m := missratio.DefaultModel()
	for i, cfg := range figure6Configs() {
		for beta := 1.0; beta <= 10; beta += 1 {
			a, err := SmithOptimal(m, cfg, beta)
			if err != nil {
				t.Fatal(err)
			}
			b, err := MeanDelayOptimal(m, cfg, beta)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("config %d β=%g: Smith %d != mean-delay %d", i, beta, a, b)
			}
		}
	}
}

func TestEq19MatchesSmithOnSimulatedTable(t *testing.T) {
	// The validation must also hold on simulator-measured miss ratios,
	// not just the parametric surface.
	refs := trace.Collect(trace.MustProgram(trace.Hydro2D, 21), 150000)
	tab := missratio.NewTable()
	for _, ls := range []int{8, 16, 32, 64, 128} {
		c := cache.MustNew(cache.Config{Size: 8 << 10, LineSize: ls, Assoc: 2})
		p := cache.Measure(c, refs)
		tab.Set(8<<10, ls, 1-p.HitRatio)
	}
	cfg := Config{CacheSize: 8 << 10, BusWidth: 8, LatencyNS: 360, NSPerByte: 15, Lines: []int{8, 16, 32, 64, 128}}
	for beta := 1.0; beta <= 8; beta++ {
		smith, err := SmithOptimal(tab, cfg, beta)
		if err != nil {
			t.Fatal(err)
		}
		eq19, err := Eq19Optimal(tab, cfg, beta)
		if err != nil {
			t.Fatal(err)
		}
		if smith != eq19 {
			t.Fatalf("simulated β=%g: Smith %d != Eq19 %d", beta, smith, eq19)
		}
	}
}

func TestReducedDelaysBaseIsZero(t *testing.T) {
	m := missratio.DefaultModel()
	cfg := figure6Configs()[0]
	pts, err := ReducedDelays(m, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(cfg.Lines) {
		t.Fatalf("%d points, want %d", len(pts), len(cfg.Lines))
	}
	if pts[0].Line != 8 || pts[0].Reduced != 0 {
		t.Fatalf("base point %+v, want line 8 with zero reduction", pts[0])
	}
}

func TestUsefulBusSpeeds(t *testing.T) {
	// For config (c) — long latency, cheap transfer — the 64-byte line
	// must be beneficial across typical bus speeds; for a line that
	// pollutes (128 B in the small 8K cache of config (d)) the range
	// must be narrower than for 32 B.
	m := missratio.DefaultModel()
	betas := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	useful64, err := UsefulBusSpeeds(m, figure6Configs()[2], 64, betas)
	if err != nil {
		t.Fatal(err)
	}
	if len(useful64) != len(betas) {
		t.Fatalf("64B useful at %d/%d speeds in config (c)", len(useful64), len(betas))
	}
	useful32, err := UsefulBusSpeeds(m, figure6Configs()[3], 32, betas)
	if err != nil {
		t.Fatal(err)
	}
	useful128, err := UsefulBusSpeeds(m, figure6Configs()[3], 128, betas)
	if err != nil {
		t.Fatal(err)
	}
	if len(useful128) > len(useful32) {
		t.Fatalf("128B useful at %d speeds but 32B at %d in the 8K cache", len(useful128), len(useful32))
	}
}

func TestSelectionRejectsBadConfig(t *testing.T) {
	m := missratio.DefaultModel()
	bad := Config{CacheSize: 0, BusWidth: 4, LatencyNS: 1, NSPerByte: 1, Lines: []int{8, 16}}
	if _, err := SmithOptimal(m, bad, 1); err == nil {
		t.Fatal("SmithOptimal accepted bad config")
	}
	if _, err := MeanDelayOptimal(m, bad, 1); err == nil {
		t.Fatal("MeanDelayOptimal accepted bad config")
	}
	if _, err := ReducedDelays(m, bad, 1); err == nil {
		t.Fatal("ReducedDelays accepted bad config")
	}
	if _, err := UsefulBusSpeeds(m, bad, 16, []float64{1}); err == nil {
		t.Fatal("UsefulBusSpeeds accepted bad config")
	}
}
