package linesize_test

import (
	"fmt"

	"tradeoff/internal/linesize"
	"tradeoff/internal/missratio"
)

// Selecting the optimal line size for Figure 6(a)'s design point:
// Smith's criterion and the paper's Eq. (19) must agree.
func ExampleSmithOptimal() {
	cfg := linesize.Config{
		CacheSize: 16 << 10,
		BusWidth:  4,
		LatencyNS: 360,
		NSPerByte: 15,
		Lines:     []int{8, 16, 32, 64, 128},
	}
	m := missratio.DefaultModel()
	smith, _ := linesize.SmithOptimal(m, cfg, 2)
	eq19, _ := linesize.Eq19Optimal(m, cfg, 2)
	fmt.Printf("Smith: %dB, Eq.19: %dB\n", smith, eq19)
	// Output:
	// Smith: 32B, Eq.19: 32B
}

// The reduced memory delay of each candidate line against the 8-byte
// base (Eq. 19): positive values justify the larger line.
func ExampleReducedDelays() {
	cfg := linesize.Config{
		CacheSize: 16 << 10,
		BusWidth:  4,
		LatencyNS: 360,
		NSPerByte: 15,
		Lines:     []int{8, 32, 128},
	}
	pts, _ := linesize.ReducedDelays(missratio.DefaultModel(), cfg, 2)
	for _, p := range pts {
		fmt.Printf("L=%3d: %+.4f\n", p.Line, p.Reduced)
	}
	// Output:
	// L=  8: +0.0000
	// L= 32: +0.4889
	// L=128: -0.1193
}
