// Package linesize selects optimal cache line sizes and validates the
// paper's line-size tradeoff (Eq. 19) against Smith's criterion
// (Eq. 16), reproducing §5.4 and Figure 6.
//
// All selections work over a missratio.Surface — either the calibrated
// design-target model or a simulator-measured table — so the validation
// (both criteria pick the same line) can be checked on either source.
package linesize

import (
	"fmt"
	"math"

	"tradeoff/internal/core"
	"tradeoff/internal/missratio"
)

// Config describes one Figure 6 design point. The paper's subcaptions
// give memory timing as latency-ns + ns/byte; with the bus speed β
// normalized to hit cycles, the access latency becomes c = 1 + λβ where
// λ = LatencyNS / (NSPerByte · D) (see DESIGN.md §4, substitution 4).
type Config struct {
	CacheSize int     // bytes
	BusWidth  int     // D, bytes
	LatencyNS float64 // constant memory access latency, ns
	NSPerByte float64 // transfer time per byte, ns
	Lines     []int   // candidate line sizes, ascending; Lines[0] is the base L0
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	switch {
	case c.CacheSize <= 0:
		return fmt.Errorf("linesize: cache size %d", c.CacheSize)
	case c.BusWidth <= 0:
		return fmt.Errorf("linesize: bus width %d", c.BusWidth)
	case c.LatencyNS <= 0 || c.NSPerByte <= 0:
		return fmt.Errorf("linesize: timing %gns + %gns/B", c.LatencyNS, c.NSPerByte)
	case len(c.Lines) < 2:
		return fmt.Errorf("linesize: need at least two candidate lines, got %v", c.Lines)
	}
	for i, l := range c.Lines {
		if l < c.BusWidth {
			return fmt.Errorf("linesize: line %d below bus width %d", l, c.BusWidth)
		}
		if i > 0 && l <= c.Lines[i-1] {
			return fmt.Errorf("linesize: lines not strictly ascending: %v", c.Lines)
		}
	}
	return nil
}

// Lambda returns λ = LatencyNS/(NSPerByte·D), the latency expressed in
// D-byte transfer times; the normalized access latency is c = 1 + λβ.
func (c Config) Lambda() float64 {
	return c.LatencyNS / (c.NSPerByte * float64(c.BusWidth))
}

// CAt returns the normalized access latency c at bus speed beta.
func (c Config) CAt(beta float64) float64 { return 1 + c.Lambda()*beta }

// SmithOptimal picks the line minimizing Smith's objective (Eq. 16):
// miss ratio × miss penalty, penalty = (c − 1) + β·L/D.
func SmithOptimal(s missratio.Surface, cfg Config, beta float64) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	cNorm := cfg.CAt(beta)
	best, bestV := 0, math.Inf(1)
	for _, l := range cfg.Lines {
		v := s.MissRatio(cfg.CacheSize, l) * (cNorm - 1 + beta*float64(l)/float64(cfg.BusWidth))
		if v < bestV {
			best, bestV = l, v
		}
	}
	return best, nil
}

// MeanDelayOptimal picks the line minimizing Eq. (15)'s mean memory
// delay per reference directly. The paper notes this and Smith's
// criterion agree because hit cycle times are equal.
func MeanDelayOptimal(s missratio.Surface, cfg Config, beta float64) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	cNorm := cfg.CAt(beta)
	best, bestV := 0, math.Inf(1)
	for _, l := range cfg.Lines {
		hr := 1 - s.MissRatio(cfg.CacheSize, l)
		v := core.MeanDelayPerRef(hr, cNorm, beta, float64(l), float64(cfg.BusWidth))
		if v < bestV {
			best, bestV = l, v
		}
	}
	return best, nil
}

// Point is one (line size, reduced delay) sample of Eq. (19).
type Point struct {
	Line    int
	Reduced float64 // memory delay per reference saved vs the base line
}

// ReducedDelays evaluates Eq. (19) for every candidate line against the
// base line cfg.Lines[0] at bus speed beta. Positive values justify the
// larger line; the maximum identifies the optimal size (§5.4.2).
func ReducedDelays(s missratio.Surface, cfg Config, beta float64) ([]Point, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cNorm := cfg.CAt(beta)
	l0 := cfg.Lines[0]
	hr0 := 1 - s.MissRatio(cfg.CacheSize, l0)
	pts := make([]Point, 0, len(cfg.Lines))
	for _, l := range cfg.Lines {
		var rd float64
		if l != l0 {
			hrI := 1 - s.MissRatio(cfg.CacheSize, l)
			var err error
			rd, err = core.ReducedDelay(hr0, hrI, cNorm, beta, float64(l0), float64(l), float64(cfg.BusWidth))
			if err != nil {
				return nil, err
			}
		}
		pts = append(pts, Point{Line: l, Reduced: rd})
	}
	return pts, nil
}

// Eq19Optimal picks the line maximizing Eq. (19)'s reduced memory
// delay. Because Eq. (19) equals the direct delay difference (see
// core.ReducedDelay), it must always match SmithOptimal — the paper's
// validation, asserted by TestEq19MatchesSmithEverywhere.
func Eq19Optimal(s missratio.Surface, cfg Config, beta float64) (int, error) {
	pts, err := ReducedDelays(s, cfg, beta)
	if err != nil {
		return 0, err
	}
	best, bestV := 0, math.Inf(-1)
	for _, p := range pts {
		if p.Reduced > bestV {
			best, bestV = p.Line, p.Reduced
		}
	}
	return best, nil
}

// UsefulBusSpeeds returns the bus speeds (among betas) at which line li
// yields a positive reduced delay over the base line — the "beneficial
// range of bus speed" of §5.4.2.
func UsefulBusSpeeds(s missratio.Surface, cfg Config, li int, betas []float64) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var out []float64
	for _, beta := range betas {
		pts, err := ReducedDelays(s, cfg, beta)
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			if p.Line == li && p.Reduced > 0 {
				out = append(out, beta)
			}
		}
	}
	return out, nil
}
