package plot

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"tradeoff/internal/engine"
)

// WriteCSV emits a chart's data in long form — one row per point with
// columns (series, x, y) — which re-plots cleanly in any external tool
// regardless of whether the series share x grids.
func WriteCSV(w io.Writer, c Chart) error {
	var rows [][]string
	for _, s := range c.Series {
		if err := s.Validate(); err != nil {
			return err
		}
		for i := range s.X {
			rows = append(rows, []string{
				s.Name,
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
			})
		}
	}
	return engine.WriteCSVRows(w, []string{"series", "x", "y"}, rows)
}

// SaveCSV writes a chart's data to path, creating parent directories.
func SaveCSV(path string, c Chart) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteCSV(f, c); err != nil {
		return fmt.Errorf("plot: writing %s: %w", path, err)
	}
	return f.Close()
}

// WriteTableCSV emits a Table as CSV with its column header.
func WriteTableCSV(w io.Writer, t Table) error {
	return engine.WriteCSVRows(w, t.Columns, t.Rows)
}

// SaveTableCSV writes a table's data to path, creating parent
// directories.
func SaveTableCSV(path string, t Table) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteTableCSV(f, t); err != nil {
		return fmt.Errorf("plot: writing %s: %w", path, err)
	}
	return f.Close()
}
