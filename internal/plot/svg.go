package plot

import (
	"fmt"
	"math"
	"strings"
)

// SVG rendering: real vector figures alongside the terminal ASCII, so
// the regenerated artifacts can go straight into a paper or web page.

// svgPalette holds the series colors, chosen for contrast on white.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// svgSize fixes the canvas geometry.
const (
	svgW, svgH             = 640, 400
	svgMarginL, svgMarginR = 70, 160
	svgMarginT, svgMarginB = 40, 60
)

// SVGChart renders the chart as a standalone SVG document: axes with
// ticks, one polyline per series with point markers, a dashed zero
// line when the y range crosses zero, and a legend.
func SVGChart(c Chart) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", svgW, svgH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", svgMarginL, xmlEscape(c.Title))
	}

	pts := 0
	for _, s := range c.Series {
		pts += len(s.X)
	}
	plotW := svgW - svgMarginL - svgMarginR
	plotH := svgH - svgMarginT - svgMarginB
	if pts == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d">(no data)</text>`+"\n", svgMarginL, svgMarginT+plotH/2)
		b.WriteString("</svg>\n")
		return b.String()
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if !(xmax > xmin) {
		xmax = xmin + 1
	}
	if !(ymax > ymin) {
		ymax = ymin + 1
	}
	px := func(x float64) float64 {
		return svgMarginL + (x-xmin)/(xmax-xmin)*float64(plotW)
	}
	py := func(y float64) float64 {
		return svgMarginT + (ymax-y)/(ymax-ymin)*float64(plotH)
	}

	// Axes.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333"/>`+"\n",
		svgMarginL, svgMarginT, plotW, plotH)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/4
		fy := ymin + (ymax-ymin)*float64(i)/4
		x := px(fx)
		y := py(fy)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n",
			x, svgMarginT+plotH, x, svgMarginT+plotH+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x, svgMarginT+plotH+20, xmlEscape(formatTick(fx)))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#333"/>`+"\n",
			svgMarginL-5, y, svgMarginL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			svgMarginL-8, y, xmlEscape(formatTick(fy)))
	}
	// Axis labels.
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			svgMarginL+plotW/2, svgH-15, xmlEscape(c.XLabel))
	}
	if c.YLabel != "" {
		cx, cy := 18, svgMarginT+plotH/2
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" transform="rotate(-90 %d %d)">%s</text>`+"\n",
			cx, cy, cx, cy, xmlEscape(c.YLabel))
	}
	// Zero line.
	if ymin < 0 && ymax > 0 {
		y := py(0)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#999" stroke-dasharray="4 3"/>`+"\n",
			svgMarginL, y, svgMarginL+plotW, y)
	}

	// Series.
	for si, s := range c.Series {
		color := svgPalette[si%len(svgPalette)]
		sorted := SortedByX(s)
		var poly strings.Builder
		for i := range sorted.X {
			if i > 0 {
				poly.WriteByte(' ')
			}
			fmt.Fprintf(&poly, "%.1f,%.1f", px(sorted.X[i]), py(sorted.Y[i]))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", poly.String(), color)
		for i := range sorted.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				px(sorted.X[i]), py(sorted.Y[i]), color)
		}
		// Legend entry.
		ly := svgMarginT + 10 + si*18
		lx := svgMarginL + plotW + 12
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+18, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" dominant-baseline="middle">%s</text>`+"\n",
			lx+24, ly, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// xmlEscape escapes the five XML special characters.
func xmlEscape(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;",
	)
	return r.Replace(s)
}
