package plot

import (
	"fmt"
	"strings"
)

// Table renders rows of strings as an aligned text table with a header
// rule, in the style of the paper's Tables 2 and 3.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered
// with %v for strings and %.4g for floats.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case float32:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Render returns the aligned table as a string ending in a newline.
func (t Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
