package plot

import (
	"strings"
	"testing"
)

func TestSVGChartStructure(t *testing.T) {
	out := SVGChart(sampleChart())
	for _, want := range []string{
		"<svg", "</svg>", "test chart",
		`<polyline`, `<circle`, "up", "down",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// One polyline per series.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2", got)
	}
	// 4 points per series = 8 markers.
	if got := strings.Count(out, "<circle"); got != 8 {
		t.Fatalf("circles = %d, want 8", got)
	}
	// Ticks on both axes.
	if got := strings.Count(out, "text-anchor=\"middle\""); got < 5 {
		t.Fatalf("too few x tick labels: %d", got)
	}
}

func TestSVGChartEmpty(t *testing.T) {
	out := SVGChart(Chart{Title: "empty"})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart svg:\n%s", out)
	}
	if !strings.Contains(out, "</svg>") {
		t.Fatal("svg not closed")
	}
}

func TestSVGChartEscapesXML(t *testing.T) {
	c := Chart{
		Title:  `a <b> & "c"`,
		Series: []Series{{Name: "x<y", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	out := SVGChart(c)
	if strings.Contains(out, "a <b>") || strings.Contains(out, `"c"`+` `) {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(out, "a &lt;b&gt; &amp; &quot;c&quot;") {
		t.Fatalf("escaped title missing:\n%s", out)
	}
	if !strings.Contains(out, "x&lt;y") {
		t.Fatal("series name not escaped")
	}
}

func TestSVGChartZeroLine(t *testing.T) {
	c := Chart{Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{-1, 1}}}}
	if !strings.Contains(SVGChart(c), "stroke-dasharray") {
		t.Fatal("no dashed zero line for range crossing zero")
	}
	pos := Chart{Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{1, 2}}}}
	if strings.Contains(SVGChart(pos), "stroke-dasharray") {
		t.Fatal("zero line drawn for all-positive range")
	}
}

func TestSVGChartConstantSeries(t *testing.T) {
	c := Chart{Series: []Series{{Name: "c", X: []float64{2, 2}, Y: []float64{5, 5}}}}
	out := SVGChart(c)
	if !strings.Contains(out, "<polyline") {
		t.Fatal("degenerate range broke rendering")
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatal("NaN/Inf leaked into svg")
	}
}
