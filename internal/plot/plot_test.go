package plot

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleChart() Chart {
	return Chart{
		Title:  "test chart",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
		},
		Width:  40,
		Height: 10,
	}
}

func TestSeriesValidate(t *testing.T) {
	good := Series{Name: "s", X: []float64{1, 2}, Y: []float64{3, 4}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid series rejected: %v", err)
	}
	bad := Series{Name: "s", X: []float64{1}, Y: []float64{3, 4}}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	nan := Series{Name: "s", X: []float64{1}, Y: []float64{math.NaN()}}
	if err := nan.Validate(); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestRenderContainsParts(t *testing.T) {
	out := sampleChart().Render()
	for _, want := range []string{"test chart", "up", "down", "*", "o", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Chart{Title: "empty"}.Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart render:\n%s", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	c := Chart{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{7}}}}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges (all x equal, all y equal) must not panic or
	// divide by zero.
	c := Chart{Series: []Series{{Name: "c", X: []float64{2, 2, 2}, Y: []float64{5, 5, 5}}}}
	if out := c.Render(); !strings.Contains(out, "*") {
		t.Fatalf("constant series missing marker:\n%s", out)
	}
}

func TestRenderZeroLine(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{-5, 5}}},
		Width:  20, Height: 9,
	}
	if out := c.Render(); !strings.Contains(out, "---") {
		t.Fatalf("no zero line for range crossing zero:\n%s", out)
	}
}

func TestRenderMarkerAtCorners(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "s", X: []float64{0, 10}, Y: []float64{0, 10}}},
		Width:  20, Height: 5,
	}
	lines := strings.Split(c.Render(), "\n")
	// First grid row should contain the max-y point, last grid row the
	// min-y point.
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines = append(gridLines, l)
		}
	}
	if len(gridLines) != 5 {
		t.Fatalf("got %d grid rows, want 5", len(gridLines))
	}
	if !strings.Contains(gridLines[0], "*") || !strings.Contains(gridLines[4], "*") {
		t.Fatalf("corner markers missing:\n%s", strings.Join(gridLines, "\n"))
	}
}

func TestSortedByX(t *testing.T) {
	s := Series{Name: "s", X: []float64{3, 1, 2}, Y: []float64{30, 10, 20}}
	got := SortedByX(s)
	wantX := []float64{1, 2, 3}
	wantY := []float64{10, 20, 30}
	for i := range wantX {
		if got.X[i] != wantX[i] || got.Y[i] != wantY[i] {
			t.Fatalf("SortedByX = %v/%v", got.X, got.Y)
		}
	}
	// Original untouched.
	if s.X[0] != 3 {
		t.Fatal("SortedByX mutated its input")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleChart()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "series,x,y\n") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
	if !strings.Contains(out, "up,0,0") || !strings.Contains(out, "down,3,0") {
		t.Fatalf("csv rows missing:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 9 { // header + 8 points
		t.Fatalf("csv has %d lines, want 9", lines)
	}
}

func TestWriteCSVRejectsInvalidSeries(t *testing.T) {
	c := Chart{Series: []Series{{Name: "bad", X: []float64{1}, Y: nil}}}
	if err := WriteCSV(&bytes.Buffer{}, c); err == nil {
		t.Fatal("invalid series accepted")
	}
}

func TestSaveCSVCreatesDirs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "chart.csv")
	if err := SaveCSV(path, sampleChart()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,y") {
		t.Fatal("saved csv content wrong")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "Table 3", Columns: []string{"metric", "r", "X"}}
	tab.AddRow("doubling bus", "2.5", "...")
	tab.AddRow("write buffers", "1.2")
	out := tab.Render()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "doubling bus") {
		t.Fatalf("table render:\n%s", out)
	}
	// Missing cells pad to empty.
	if strings.Count(out, "\n") != 5 { // title, header, rule, 2 rows
		t.Fatalf("table rows wrong:\n%q", out)
	}
	// Columns align: header and first row start the 2nd column at the
	// same offset.
	lines := strings.Split(out, "\n")
	h, r := lines[1], lines[3]
	if strings.Index(h, " r ") != strings.Index(r, " 2.5") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tab := Table{Columns: []string{"a", "b", "c"}}
	tab.AddRowf("x", 2.53339, 7)
	if got := tab.Rows[0][1]; got != "2.533" {
		t.Fatalf("float formatting = %q", got)
	}
	if got := tab.Rows[0][2]; got != "7" {
		t.Fatalf("int formatting = %q", got)
	}
}

func TestWriteTableCSV(t *testing.T) {
	tab := Table{Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	if err := WriteTableCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Fatalf("table csv = %q", got)
	}
}

func TestSaveTableCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deep", "t.csv")
	tab := Table{Columns: []string{"a"}}
	tab.AddRow("v")
	if err := SaveTableCSV(path, tab); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234:    "1.23e+03",
		0.005:   "0.005",
		0.5:     "0.500",
		3.14159: "3.14",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
