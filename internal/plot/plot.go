// Package plot renders data series as ASCII line charts, aligned text
// tables, and CSV files.
//
// The reproduction hint for this paper calls out that its analysis
// tooling is thin: the original figures were hand-plotted curves. This
// package gives every experiment a uniform way to (a) show a figure in
// a terminal and (b) emit machine-readable CSV next to it so the curves
// can be re-plotted with any external tool.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named curve: parallel X and Y slices.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Validate reports structural problems (mismatched lengths, NaNs).
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x values but %d y values", s.Name, len(s.X), len(s.Y))
	}
	for i := range s.X {
		if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
			return fmt.Errorf("plot: series %q has NaN at point %d", s.Name, i)
		}
	}
	return nil
}

// Chart is a collection of series with axis labels. Render produces an
// ASCII plot sized Width×Height characters for the data area.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Width  int // data columns; 0 means 72
	Height int // data rows; 0 means 20
}

// markers assigns one glyph per series, cycling if there are many.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart. Series are overlaid on a shared axis range
// computed from all points; later series draw over earlier ones where
// they collide. An empty chart renders its title and a note.
func (c Chart) Render() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	pts := 0
	for _, s := range c.Series {
		pts += len(s.X)
	}
	if pts == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if !(xmax > xmin) {
		xmax = xmin + 1
	}
	if !(ymax > ymin) {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	// Zero line, if zero is inside the y range.
	if ymin < 0 && ymax > 0 {
		if row := rowOf(0, ymin, ymax, h); row >= 0 && row < h {
			for col := 0; col < w; col++ {
				grid[row][col] = '-'
			}
		}
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		var prevRow, prevCol int
		for i := range s.X {
			col := colOf(s.X[i], xmin, xmax, w)
			row := rowOf(s.Y[i], ymin, ymax, h)
			if i > 0 {
				drawLine(grid, prevCol, prevRow, col, row, m)
			}
			grid[row][col] = m
			prevRow, prevCol = row, col
		}
	}

	yLo, yHi := formatTick(ymin), formatTick(ymax)
	labelW := len(yLo)
	if len(yHi) > labelW {
		labelW = len(yHi)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", c.YLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch i {
		case 0:
			label = pad(yHi, labelW)
		case h - 1:
			label = pad(yLo, labelW)
		case h / 2:
			label = pad(formatTick((ymin+ymax)/2), labelW)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	xLo, xHi := formatTick(xmin), formatTick(xmax)
	gap := w - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW), xLo, strings.Repeat(" ", gap), xHi)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", labelW), center(c.XLabel, w))
	}
	// Legend.
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func center(s string, w int) string {
	if len(s) >= w {
		return s
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1000 || av < 0.01:
		return fmt.Sprintf("%.3g", v)
	case av < 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func colOf(x, xmin, xmax float64, w int) int {
	col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
	return clamp(col, 0, w-1)
}

func rowOf(y, ymin, ymax float64, h int) int {
	row := int(math.Round((ymax - y) / (ymax - ymin) * float64(h-1)))
	return clamp(row, 0, h-1)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// drawLine connects two grid cells with marker m using a simple
// Bresenham walk, skipping the endpoints (drawn by the caller).
func drawLine(grid [][]byte, x0, y0, x1, y1 int, m byte) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := sign(x1-x0), sign(y1-y0)
	err := dx + dy
	x, y := x0, y0
	for {
		if x == x1 && y == y1 {
			break
		}
		if (x != x0 || y != y0) && grid[y][x] == ' ' {
			grid[y][x] = '.'
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
	_ = m
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// SortedByX returns a copy of s with points ordered by ascending X,
// which Render's line drawing assumes for sensible output.
func SortedByX(s Series) Series {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	out := Series{Name: s.Name, X: make([]float64, len(s.X)), Y: make([]float64, len(s.Y))}
	for i, j := range idx {
		out.X[i], out.Y[i] = s.X[j], s.Y[j]
	}
	return out
}
