package experiments

import (
	"fmt"

	"tradeoff/internal/area"
	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/plot"
	"tradeoff/internal/trace"
)

// Associativity (E23) applies the methodology's currency to cache
// organization itself: the hit ratio gained by associativity (and by a
// Jouppi victim buffer, the paper's reference [7]) is compared with
// what the Table 3 features are worth at the same design point, and
// with the chip area each option costs. The point the unified currency
// makes: a 4-entry victim buffer buys conflict-miss relief comparable
// to doubling associativity at a tiny fraction of the area of the
// cache-size route to the same hit ratio.
func Associativity(o Options) ([]Artifact, error) {
	const (
		size  = 8 << 10
		line  = 32
		d     = 4.0
		betaM = 10.0
	)
	refs := trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
		Seed: o.seed(), Base: 0x1000_0000, Lines: 65536, Theta: 1.5, WriteFrac: 0.3,
	}), o.refsPerProgram())

	type config struct {
		name  string
		hr    float64
		extra float64 // extra rbe over the direct-mapped base
	}
	var configs []config

	baseGeom := area.CacheGeometry{Size: size, LineSize: line, Assoc: 1}
	baseRBE, err := area.RBE(baseGeom)
	if err != nil {
		return nil, err
	}

	measure := func(assoc int) (float64, float64, error) {
		c, err := cache.New(cache.Config{Size: size, LineSize: line, Assoc: assoc})
		if err != nil {
			return 0, 0, err
		}
		p := cache.Measure(c, refs)
		rbe, err := area.RBE(area.CacheGeometry{Size: size, LineSize: line, Assoc: assoc})
		if err != nil {
			return 0, 0, err
		}
		return p.HitRatio, rbe - baseRBE, nil
	}
	for _, assoc := range []int{1, 2, 4} {
		hr, extra, err := measure(assoc)
		if err != nil {
			return nil, err
		}
		configs = append(configs, config{fmt.Sprintf("%d-way", assoc), hr, extra})
	}
	// Direct-mapped plus a 4-entry victim buffer.
	vc, err := cache.NewVictim(cache.Config{Size: size, LineSize: line, Assoc: 1}, 4)
	if err != nil {
		return nil, err
	}
	for _, r := range refs {
		vc.Access(r.Addr, r.Write)
	}
	// Buffer area: 4 fully-associative lines' worth of storage.
	bufRBE, err := area.RBE(area.CacheGeometry{Size: 4 * line, LineSize: line, Assoc: 0})
	if err != nil {
		return nil, err
	}
	configs = append(configs, config{"1-way + victim(4)", vc.Combined().HitRatio, bufRBE})

	baseHR := configs[0].hr
	t := plot.Table{
		Title:   "Cache organization priced in hit ratio (Zipf workload, 8K, L=32) vs Table 3 features at the same point",
		Columns: []string{"organization", "hit ratio", "dHR vs 1-way", "extra area (rbe)", "features it out-trades"},
	}
	// Feature worths at this design point, for the comparison column.
	type worth struct {
		name string
		dhr  float64
	}
	var worths []worth
	for _, spec := range []core.FeatureSpec{
		{Feature: core.FeatureWriteBuffers},
		{Feature: core.FeatureDoubleBus},
	} {
		tr, err := core.FeatureTradeoff(spec, baseHR, 0.5, line, d, betaM)
		if err != nil {
			return nil, err
		}
		worths = append(worths, worth{spec.Feature.String(), tr.DeltaHR})
	}
	for _, cfg := range configs {
		dhr := cfg.hr - baseHR
		beats := ""
		for _, w := range worths {
			if dhr >= w.dhr {
				if beats != "" {
					beats += ", "
				}
				beats += w.name
			}
		}
		if beats == "" {
			beats = "-"
		}
		t.AddRowf(cfg.name, cfg.hr, dhr, cfg.extra, beats)
	}
	return []Artifact{{ID: "E23", Name: "associativity", Title: t.Title, Table: &t}}, nil
}
