package experiments

import (
	"fmt"

	"tradeoff/internal/core"
	"tradeoff/internal/plot"
)

// Table1 reproduces the paper's Table 1: the architectural parameters
// and their meanings, annotated with where this repository sets or
// measures each one.
func Table1(Options) ([]Artifact, error) {
	t := plot.Table{
		Title:   "Table 1: Architectural Parameters",
		Columns: []string{"symbol", "meaning", "in this repository"},
	}
	t.AddRow("D", "processor external data bus width in bytes (4, 8, 16, 32)", "memory.Config.BusWidth, core params")
	t.AddRow("L", "cache line size in bytes", "cache.Config.LineSize")
	t.AddRow("beta_m", "memory cycle time for a D-byte read/write", "memory.Config.BetaM")
	t.AddRow("E", "instructions executed", "measured: trace instruction indices")
	t.AddRow("R", "data bytes read in full bus width on read misses", "measured: cache.AppProfile.R")
	t.AddRow("R_I", "instruction bytes read on I-cache misses", "measured from trace.IFetch streams")
	t.AddRow("W", "write-around miss instructions using the bus", "measured: cache.AppProfile.W")
	t.AddRow("alpha", "cache line flush ratio (dirty copy-backs / fetches)", "measured: cache.Stats.FlushRatio; 0.5 in analytic studies")
	t.AddRow("phi", "stalling factor (Table 2)", "measured: stall.Result.Phi")
	t.AddRow("q", "pipelined memory readiness interval", "memory.Config.Q (Eq. 9)")
	return []Artifact{{ID: "E0", Name: "table1", Title: t.Title, Table: &t}}, nil
}

// Table2 reproduces the paper's Table 2: the processor stalling
// features and the bounds of their stalling factors φ.
func Table2(Options) ([]Artifact, error) {
	t := plot.Table{
		Title:   "Table 2: Processor Stalling Features",
		Columns: []string{"feature", "meaning", "stalling factor"},
	}
	t.AddRow("FS", "full stalling", "phi = L/D")
	t.AddRow("BL", "bus-locked", "1 <= phi <= L/D")
	t.AddRow("BNL", "bus-not-locked (BNL1/BNL2/BNL3)", "1 <= phi <= L/D")
	t.AddRow("NB", "non-blocking", "0 <= phi <= L/D")
	return []Artifact{{ID: "E1", Name: "table2", Title: t.Title, Table: &t}}, nil
}

// table3Point is one design point Table 3 is evaluated at.
type table3Point struct {
	l, d, betaM float64
}

// Table3 reproduces Table 3: the ratio of cache misses r for each
// architectural feature under a write-allocate cache (W = 0), shown
// symbolically and evaluated at representative design points. The
// partially-stalling row uses φ at its best value 1; q = 2 for the
// pipelined memory.
func Table3(Options) ([]Artifact, error) {
	const alpha = 0.5
	points := []table3Point{
		{8, 4, 2}, {8, 4, 10}, {32, 4, 2}, {32, 4, 10}, {32, 4, 20},
	}
	t := plot.Table{
		Title: "Table 3: Ratio of Cache Misses r per Feature (write allocate, alpha=0.5, phi_PS=1, q=2)",
		Columns: []string{
			"feature", "r (symbolic)",
			"L=8,D=4,bm=2", "L=8,D=4,bm=10", "L=32,D=4,bm=2", "L=32,D=4,bm=10", "L=32,D=4,bm=20",
		},
	}
	rows := []struct {
		name     string
		symbolic string
		spec     core.FeatureSpec
	}{
		{"doubling bus", "((L/D+aL/D)bm-1)/((L/2D+aL/2D)bm-1)", core.FeatureSpec{Feature: core.FeatureDoubleBus}},
		{"partially stalling (BL,BNL)", "((L/D+aL/D)bm-1)/((phi+aL/D)bm-1)", core.FeatureSpec{Feature: core.FeaturePartialStall, Phi: 1}},
		{"write buffers", "((L/D+aL/D)bm-1)/((L/D)bm-1)", core.FeatureSpec{Feature: core.FeatureWriteBuffers}},
		{"pipelined memory", "((L/D+aL/D)bm-1)/((1+a)bp-1)", core.FeatureSpec{Feature: core.FeaturePipelinedMemory, Q: 2}},
	}
	for _, row := range rows {
		cells := []string{row.name, row.symbolic}
		for _, pt := range points {
			r, err := core.MissRatioOfCaches(row.spec, alpha, pt.l, pt.d, pt.betaM)
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.3f", r))
		}
		t.AddRow(cells...)
	}
	return []Artifact{{ID: "E2", Name: "table3", Title: t.Title, Table: &t}}, nil
}
