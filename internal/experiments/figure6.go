package experiments

import (
	"fmt"

	"tradeoff/internal/cache"
	"tradeoff/internal/linesize"
	"tradeoff/internal/missratio"
	"tradeoff/internal/plot"
	"tradeoff/internal/trace"
)

// figure6Configs returns the four design points of Figure 6 with the
// candidate line sizes the paper plots; the first line (8 B) is the
// comparison base L0.
func figure6Configs() []struct {
	label string
	quote string // the optimal line Smith's design targets chose
	cfg   linesize.Config
} {
	lines := []int{8, 16, 32, 64, 128}
	return []struct {
		label string
		quote string
		cfg   linesize.Config
	}{
		{"a_16K_D4_360ns_15nsB", "Smith: 32 bytes at beta=2",
			linesize.Config{CacheSize: 16 << 10, BusWidth: 4, LatencyNS: 360, NSPerByte: 15, Lines: lines}},
		{"b_16K_D8_160ns_15nsB", "Smith: 16 bytes at beta=3",
			linesize.Config{CacheSize: 16 << 10, BusWidth: 8, LatencyNS: 160, NSPerByte: 15, Lines: lines}},
		{"c_16K_D8_600ns_4nsB", "Smith: 64 or 128 bytes at beta=1",
			linesize.Config{CacheSize: 16 << 10, BusWidth: 8, LatencyNS: 600, NSPerByte: 4, Lines: lines}},
		{"d_8K_D8_360ns_15nsB", "Smith: 32 bytes at beta=2",
			linesize.Config{CacheSize: 8 << 10, BusWidth: 8, LatencyNS: 360, NSPerByte: 15, Lines: lines}},
	}
}

// fig6Betas is the normalized bus-speed sweep of Figure 6.
func fig6Betas(o Options) []float64 {
	if o.Fast {
		return []float64{1, 2, 5, 10}
	}
	betas := make([]float64, 0, 20)
	for b := 0.5; b <= 10; b += 0.5 {
		betas = append(betas, b)
	}
	return betas
}

// Figure6 reproduces Figure 6: for each of the four design points, the
// reduced memory delay per reference (Eq. 19, scaled by 10^4 for
// readability) of each line size versus normalized bus speed β, using
// the calibrated design-target miss-ratio surface. The agreement table
// shows the optimum Eq. (19) selects against Smith's criterion at
// every β — the paper's validation result.
func Figure6(o Options) ([]Artifact, error) {
	m := missratio.DefaultModel()
	var arts []Artifact

	agreement := plot.Table{
		Title:   "Figure 6 validation: optimal line by Smith's criterion (Eq. 16) vs Eq. (19)",
		Columns: []string{"config", "beta", "smith", "eq19", "match", "paper quote"},
	}
	for _, c := range figure6Configs() {
		chart := plot.Chart{
			Title: fmt.Sprintf("Figure 6(%s): reduced memory delay x1e4 (%s)",
				c.label[:1], c.quote),
			XLabel: "normalized bus speed (beta)",
			YLabel: "reduced delay per ref x1e4",
		}
		perLine := map[int]*plot.Series{}
		for _, l := range c.cfg.Lines[1:] {
			perLine[l] = &plot.Series{Name: fmt.Sprintf("L=%d", l)}
		}
		for _, beta := range fig6Betas(o) {
			pts, err := linesize.ReducedDelays(m, c.cfg, beta)
			if err != nil {
				return nil, fmt.Errorf("figure6 %s: %w", c.label, err)
			}
			for _, p := range pts[1:] {
				s := perLine[p.Line]
				s.X = append(s.X, beta)
				s.Y = append(s.Y, 1e4*p.Reduced)
			}
			smith, err := linesize.SmithOptimal(m, c.cfg, beta)
			if err != nil {
				return nil, err
			}
			eq19, err := linesize.Eq19Optimal(m, c.cfg, beta)
			if err != nil {
				return nil, err
			}
			match := "YES"
			if smith != eq19 {
				match = "NO"
			}
			agreement.AddRowf(c.label, beta, smith, eq19, match, c.quote)
		}
		for _, l := range c.cfg.Lines[1:] {
			chart.Series = append(chart.Series, *perLine[l])
		}
		arts = append(arts, Artifact{ID: "E8", Name: "figure6_" + c.label, Title: chart.Title, Chart: &chart})
	}
	arts = append(arts, Artifact{ID: "E8", Name: "figure6_validation", Title: agreement.Title, Table: &agreement})

	// Cross-check on simulator-derived miss ratios for the 8K config.
	simArt, err := figure6Simulated(o)
	if err != nil {
		return nil, err
	}
	return append(arts, simArt), nil
}

// figure6Simulated repeats the validation over a miss-ratio table
// measured by the cache simulator on the SPEC92-like models, showing
// the substitution (DESIGN.md §4) does not drive the result.
func figure6Simulated(o Options) (Artifact, error) {
	refs := o.refsPerProgram()
	if !o.Fast {
		refs /= 2 // five line-size sweeps over six programs: keep it bounded
	}
	tab := missratio.NewTable()
	lines := []int{8, 16, 32, 64, 128}
	for _, ls := range lines {
		var mrSum float64
		for _, prog := range trace.Programs() {
			c, err := cache.New(cache.Config{Size: 8 << 10, LineSize: ls, Assoc: 2})
			if err != nil {
				return Artifact{}, err
			}
			p := cache.MeasureSource(c, trace.MustProgram(prog, o.seed()), refs)
			mrSum += 1 - p.HitRatio
		}
		tab.Set(8<<10, ls, mrSum/6)
	}
	cfg := linesize.Config{CacheSize: 8 << 10, BusWidth: 8, LatencyNS: 360, NSPerByte: 15, Lines: lines}
	t := plot.Table{
		Title:   "Figure 6 validation on simulated miss ratios (8K, D=8, 360ns+15ns/B)",
		Columns: []string{"beta", "miss-ratio source", "smith", "eq19", "match"},
	}
	for _, beta := range fig6Betas(o) {
		smith, err := linesize.SmithOptimal(tab, cfg, beta)
		if err != nil {
			return Artifact{}, err
		}
		eq19, err := linesize.Eq19Optimal(tab, cfg, beta)
		if err != nil {
			return Artifact{}, err
		}
		match := "YES"
		if smith != eq19 {
			match = "NO"
		}
		t.AddRowf(beta, "simulator", smith, eq19, match)
	}
	return Artifact{ID: "E8", Name: "figure6_simulated", Title: t.Title, Table: &t}, nil
}
