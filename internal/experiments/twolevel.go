package experiments

import (
	"fmt"

	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/plot"
	"tradeoff/internal/trace"
)

// TwoLevel (E26) extends the methodology to second-level caches: it
// measures L1/L2 hit ratios for several L2 sizes with the hierarchy
// simulator, prices each L2 in the L1-hit-ratio currency
// (core.PriceL2), and compares that worth with the Table 3 features at
// the same design point. The headline: a board-level L2 of the era
// (5-cycle access in front of an 80-cycle line fill) is worth more L1
// hit ratio than any single Table 3 feature — which is why L2s, not
// wider buses, won the 1990s.
func TwoLevel(o Options) ([]Artifact, error) {
	const (
		l     = 32
		d     = 4.0
		betaM = 10.0
		tL2   = 5.0  // L2 line access, cycles
		tMem  = 80.0 // memory line fill, cycles = (L/D)·βm
	)
	refs := trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
		Seed: o.seed(), Base: 0x1000_0000, Lines: 1 << 17, Theta: 1.3, WriteFrac: 0.3,
	}), o.refsPerProgram())

	t := plot.Table{
		Title:   "Second-level caches priced in L1 hit ratio (Zipf workload, L1=8K 2-way, L=32, tL2=5, tMem=80)",
		Columns: []string{"L2", "L1 hit", "L2 local hit", "global hit", "delay/ref", "worth (dL1 HR)", "vs best Table 3 feature"},
	}
	// The Table 3 yardstick at this design point.
	bestFeature := 0.0
	bestName := ""
	for _, spec := range []core.FeatureSpec{
		{Feature: core.FeatureDoubleBus},
		{Feature: core.FeatureWriteBuffers},
		{Feature: core.FeaturePipelinedMemory, Q: 2},
	} {
		// The base L1 hit ratio is measured below per L2 row; use a
		// representative 0.9 for the yardstick.
		tr, err := core.FeatureTradeoff(spec, 0.90, 0.5, l, d, betaM)
		if err != nil {
			return nil, err
		}
		if tr.DeltaHR > bestFeature {
			bestFeature, bestName = tr.DeltaHR, spec.Feature.String()
		}
	}

	for _, l2kb := range []int{32, 64, 128, 256} {
		h, err := cache.NewHierarchy(
			cache.Config{Size: 8 << 10, LineSize: l, Assoc: 2},
			cache.Config{Size: l2kb << 10, LineSize: l, Assoc: 4},
		)
		if err != nil {
			return nil, err
		}
		for _, r := range refs {
			h.Access(r.Addr, r.Write)
		}
		s := h.Stats()
		delay, err := core.TwoLevelDelay(s.L1HitRatio(), s.L2LocalHitRatio(), tL2, tMem)
		if err != nil {
			return nil, err
		}
		worth, err := core.PriceL2(s.L1HitRatio(), s.L2LocalHitRatio(), tL2, tMem)
		if err != nil {
			return nil, err
		}
		vs := fmt.Sprintf("%.1fx %s", worth.DeltaHR/bestFeature, bestName)
		t.AddRowf(fmt.Sprintf("%dK", l2kb), s.L1HitRatio(), s.L2LocalHitRatio(),
			s.GlobalHitRatio(), delay, worth.DeltaHR, vs)
	}
	return []Artifact{{ID: "E26", Name: "twolevel", Title: t.Title, Table: &t}}, nil
}
