package experiments

import (
	"fmt"

	"tradeoff/internal/area"
	"tradeoff/internal/core"
	"tradeoff/internal/missratio"
	"tradeoff/internal/plot"
)

// PinArea (E20) quantifies §5.2's implication: the chip area (in
// register-bit equivalents) a designer must add to the on-chip cache to
// equal a doubled external data bus, versus the package pins the
// narrow bus saves. The paper's observation, reproduced here: for a
// small cache the area cost is modest, while "increasing the bus width
// is more advantageous for trading the chip area when the cache is
// large" — the absolute area the bus replaces grows with cache size.
func PinArea(Options) ([]Artifact, error) {
	const (
		alpha = 0.5
		line  = 32
		d     = 4.0
		betaM = 10.0
	)
	m := missratio.DefaultModel()
	bus := area.Pins{DataBits: 32, AddrBits: 32, Control: 40}
	sizes := []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}

	t := plot.Table{
		Title: "Pin count vs chip area (§5.2): cache growth equivalent to doubling a 32-bit bus " +
			"(design-target hit ratios, L=32, beta_m=10)",
		Columns: []string{"base cache", "base HR", "needed HR", "equivalent cache", "area delta (rbe)", "area ratio", "pins saved"},
	}
	for _, base := range sizes {
		hr := 1 - m.MissRatio(base, line)
		eq, err := core.ExampleOne(hr, hr, alpha, line, d, betaM)
		if err != nil {
			return nil, err
		}
		// Find the smallest swept size whose design-target hit ratio
		// covers the needed HR.
		match := 0
		for _, cand := range sizes {
			if cand > base && 1-m.MissRatio(cand, line) >= eq.NeededHR {
				match = cand
				break
			}
		}
		if match == 0 {
			t.AddRowf(fmt.Sprintf("%dK", base>>10), hr, eq.NeededHR, "beyond sweep", "-", "-", bus.DoubleBus().DataBits-bus.DataBits)
			continue
		}
		ex, err := area.BusVsCache(
			area.CacheGeometry{Size: base, LineSize: line, Assoc: 2},
			area.CacheGeometry{Size: match, LineSize: line, Assoc: 2},
			bus,
		)
		if err != nil {
			return nil, err
		}
		t.AddRowf(fmt.Sprintf("%dK", base>>10), hr, eq.NeededHR,
			fmt.Sprintf("%dK", match>>10), ex.DeltaRBE, ex.AreaRatio, ex.PinsSaved)
	}
	return []Artifact{{ID: "E20", Name: "pinarea", Title: t.Title, Table: &t}}, nil
}
