package experiments

import (
	"fmt"
	"math"

	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/plot"
	"tradeoff/internal/stall"
	"tradeoff/internal/trace"
)

// Example1 reproduces §5.2's Example 1: exchanging cache size for bus
// width with the Short & Levy hit ratios, plus the same exchange
// re-derived from our own cache simulator sweep (the substitution
// cross-check).
func Example1(o Options) ([]Artifact, error) {
	t := plot.Table{
		Title:   "Example 1: cache size vs bus width equivalence (FS, alpha=0.5, L=32, D=4)",
		Columns: []string{"case", "small cache HR", "bus-doubling is worth", "needed HR", "large cache HR", "equivalent"},
	}
	addCase := func(name string, smallHR, largeHR float64) error {
		eq, err := core.ExampleOne(smallHR, largeHR, 0.5, 32, 4, 10)
		if err != nil {
			return err
		}
		verdict := "no"
		// The paper states the equivalence with rounded hit ratios;
		// accept a half-point tolerance when reporting.
		if eq.LargeHR >= eq.NeededHR-0.005 {
			verdict = "yes (±0.5%)"
		}
		if eq.Satisfied {
			verdict = "yes"
		}
		t.AddRowf(name, eq.SmallHR, eq.DeltaHR, eq.NeededHR, eq.LargeHR, verdict)
		return nil
	}
	// Case 1: 8K + 64-bit ≡ 32K + 32-bit (Short & Levy ratios).
	if err := addCase("8K/64-bit vs 32K/32-bit (Short&Levy)", core.ShortLevyHR8K, core.ShortLevyHR32K); err != nil {
		return nil, err
	}

	arts := []Artifact{{ID: "E9", Name: "example1", Title: t.Title, Table: &t}}

	// Simulator cross-check: sweep cache sizes on the Zipf-reuse
	// general-workload model — whose measured hit ratios land on the
	// Short & Levy curve (≈0.91 at 8K, ≈0.955 at 32K) — and report the
	// cache size whose hit ratio covers what bus doubling is worth.
	sizes := []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
	refs := trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
		Seed: o.seed(), Base: 0x1000_0000, Lines: 65536, Theta: 1.5, WriteFrac: 0.3,
	}), 2*o.refsPerProgram())
	// Warm each cache on the first half of the trace and measure the
	// second half, so short fast-mode traces are not dominated by
	// compulsory misses.
	warm, measured := refs[:len(refs)/2], refs[len(refs)/2:]
	points := make([]cache.SweepPoint, 0, len(sizes))
	for _, sz := range sizes {
		c, err := cache.New(cache.Config{Size: sz, LineSize: 32, Assoc: 2})
		if err != nil {
			return nil, err
		}
		for _, r := range warm {
			c.Access(r.Addr, r.Write)
		}
		c.ResetStats()
		points = append(points, cache.SweepPoint{Config: c.Config(), Profile: cache.Measure(c, measured)})
	}
	sim := plot.Table{
		Title:   "Example 1 on simulated hit ratios (Zipf general-workload model): cache size equivalent to doubling the bus",
		Columns: []string{"base size", "base HR", "needed HR", "equivalent size", "equivalent HR"},
	}
	for i, base := range points {
		eq, err := core.ExampleOne(base.Profile.HitRatio, base.Profile.HitRatio, 0.5, 32, 4, 10)
		if err != nil {
			return nil, err
		}
		match := "beyond sweep"
		matchHR := 0.0
		for _, cand := range points[i+1:] {
			if cand.Profile.HitRatio >= eq.NeededHR {
				match = fmt.Sprintf("%dK", cand.Config.Size>>10)
				matchHR = cand.Profile.HitRatio
				break
			}
		}
		sim.AddRowf(fmt.Sprintf("%dK", base.Config.Size>>10),
			base.Profile.HitRatio, eq.NeededHR, match, matchHR)
	}
	arts = append(arts, Artifact{ID: "E9", Name: "example1_simulated", Title: sim.Title, Table: &sim})
	return arts, nil
}

// Ranking reproduces the §5.3 ranking claim: across a wide βm range
// and both line sizes, doubling the bus beats write buffers beats the
// bus-not-locked cache (pipelined memory excluded; it has its own
// crossover, see E11).
func Ranking(o Options) ([]Artifact, error) {
	t := plot.Table{
		Title:   "Feature ranking by hit ratio traded (base HR 95%, alpha=0.5, D=4, phi=BNL1 measured)",
		Columns: []string{"L", "betaM", "1st", "2nd", "3rd", "consistent with paper"},
	}
	betas := []float64{4, 8, 12, 16, 20}
	if o.Fast {
		betas = []float64{4, 12, 20}
	}
	for _, l := range []float64{8, 32} {
		for _, b := range betas {
			phi, err := MeasurePhi(stall.BNL1, int64(b), int(l), o)
			if err != nil {
				return nil, err
			}
			if phi < 1 {
				phi = 1
			}
			if phi > l/4 {
				phi = l / 4
			}
			ranked, err := core.RankFeatures(0.95, 0.5, l, 4, b, phi, 2)
			if err != nil {
				return nil, err
			}
			// Drop the pipelined memory row for the non-pipelined claim.
			var names []string
			for _, tr := range ranked {
				if tr.Feature == core.FeaturePipelinedMemory {
					continue
				}
				names = append(names, tr.Feature.String())
			}
			consistent := "YES"
			if len(names) != 3 ||
				names[0] != core.FeatureDoubleBus.String() ||
				names[1] != core.FeatureWriteBuffers.String() ||
				names[2] != core.FeaturePartialStall.String() {
				consistent = "NO"
			}
			t.AddRowf(l, b, names[0], names[1], names[2], consistent)
		}
	}
	return []Artifact{{ID: "E10", Name: "ranking", Title: t.Title, Table: &t}}, nil
}

// Crossover reproduces the §5.3/§6 pipelined-memory claim: the memory
// cycle time beyond which pipelining beats bus doubling, for several
// line-to-bus ratios and readiness intervals.
func Crossover(Options) ([]Artifact, error) {
	t := plot.Table{
		Title:   "Pipelined memory vs doubling bus: crossover memory cycle time (Eq. 9 + Table 3)",
		Columns: []string{"L/D", "q", "crossover betaM", "note"},
	}
	for _, n := range []float64{2, 4, 8, 16} {
		for _, q := range []float64{1, 2, 4} {
			x, err := core.PipelineCrossover(q, n*4, 4)
			if err != nil {
				return nil, err
			}
			note := ""
			if math.IsInf(x, 1) {
				note = "pipelining never overtakes bus doubling (L=2D)"
				t.AddRowf(n, q, "+Inf", note)
				continue
			}
			//lint:ignore floatcmp n and q range over exact small integer literals
			if n == 8 && q == 2 {
				note = "the paper's 'about five or six clock cycles'"
			}
			t.AddRowf(n, q, x, note)
		}
	}
	return []Artifact{{ID: "E11", Name: "crossover", Title: t.Title, Table: &t}}, nil
}

// Limits reproduces the §4.1 limit analysis: the miss-count ratio r of
// bus doubling at the design-limit memory cycle (βm = 2) and in the
// βm → ∞ limit, bracketing the "2HR−1 to 2.5HR−1.5" statement.
func Limits(Options) ([]Artifact, error) {
	t := plot.Table{
		Title:   "Bus-doubling limit analysis (alpha=0.5): r and the hit ratio mapping HR2 = 1 - r(1-HR1)",
		Columns: []string{"case", "r", "HR1=0.95 -> HR2", "HR1=0.98 -> HR2"},
	}
	for _, c := range []struct {
		name  string
		betaM float64
	}{
		{"design limit betaM=2, L=2D", 2},
		{"large betaM (1e6), L=2D", 1e6},
	} {
		r, err := core.MissRatioOfCaches(core.FeatureSpec{Feature: core.FeatureDoubleBus}, 0.5, 8, 4, c.betaM)
		if err != nil {
			return nil, err
		}
		t.AddRowf(c.name, r, core.EquivalentHitRatio(0.95, r), core.EquivalentHitRatio(0.98, r))
	}
	return []Artifact{{ID: "E12", Name: "limits", Title: t.Title, Table: &t}}, nil
}
