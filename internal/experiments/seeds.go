package experiments

import (
	"tradeoff/internal/memory"
	"tradeoff/internal/plot"
	"tradeoff/internal/stall"
	"tradeoff/internal/stats"
)

// Seeds (E29) checks that the simulation-backed results are stable
// under the one arbitrary choice the reproduction makes — the trace
// seed. The measured stalling-factor averages must agree across seeds
// to within a couple of points of L/D, or the Figure 1/3/4/5 curves
// would be RNG artifacts rather than workload properties.
func Seeds(o Options) ([]Artifact, error) {
	seeds := []uint64{1994, 7, 123457}
	betas := []int64{2, 10}
	if o.Fast {
		betas = []int64{10}
	}
	t := plot.Table{
		Title:   "Seed sensitivity: BNL3 stalling factor (% of L/D, avg of six models) across trace seeds",
		Columns: []string{"betaM", "seed 1994", "seed 7", "seed 123457", "spread (max-min)"},
	}
	for _, b := range betas {
		var fracs []float64
		for _, seed := range seeds {
			cfg := stall.Config{
				Cache:   fig1Cache(),
				Memory:  memory.Config{BetaM: b, BusWidth: 4},
				Feature: stall.BNL3,
			}
			_, avg, err := averagePrograms(cfg, o.refsPerProgram(), seed, o.Workers)
			if err != nil {
				return nil, err
			}
			fracs = append(fracs, 100*avg.PhiFraction)
		}
		sum, err := stats.Summarize(fracs)
		if err != nil {
			return nil, err
		}
		t.AddRowf(b, fracs[0], fracs[1], fracs[2], sum.Max-sum.Min)
	}
	return []Artifact{{ID: "E29", Name: "seeds", Title: t.Title, Table: &t}}, nil
}
