package experiments

import (
	"tradeoff/internal/bus"
	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/plot"
	"tradeoff/internal/trace"
)

// Contention (E25) extends the methodology to bus-based multiprocessor
// systems (the setting of the paper's reference [10]): sharing the bus
// among n processors inflates the effective memory cycle time each one
// sees, and the uniprocessor tradeoff model applies unchanged with
// βm_eff in place of βm. The paper's own observation then follows
// quantitatively: "doubling the data bus width or using the
// read-bypassing write buffers has a limited performance contribution
// in systems that have a relatively long memory cycle time", while the
// pipelined memory system's worth keeps growing.
func Contention(o Options) ([]Artifact, error) {
	const (
		baseHR = 0.95
		alpha  = 0.5
		l      = 32.0
		d      = 4.0
		betaM  = 4 // nominal per-transfer memory cycle
	)
	// Derive the per-processor miss inter-arrival from a cache run of
	// the Zipf workload: instructions per miss at the 8K design point.
	refs := trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
		Seed: o.seed(), Base: 0x1000_0000, Lines: 65536, Theta: 1.5, WriteFrac: 0.3,
	}), o.refsPerProgram())
	c := cache.MustNew(cache.Config{Size: 8 << 10, LineSize: int(l), Assoc: 2})
	p := cache.Measure(c, refs)
	interArrival := float64(p.E) / float64(p.Misses)

	misses := 3000
	if o.Fast {
		misses = 800
	}

	t := plot.Table{
		Title:   "Bus contention (ref. [10] setting): effective betaM and feature worth vs processor count (nominal betaM=4, L=32, D=4)",
		Columns: []string{"processors", "eff betaM", "bus util", "bus dHR%", "wbuf dHR%", "pipelined dHR%", "crossover passed"},
	}
	for _, n := range []int{1, 2, 4, 8, 16} {
		cr, err := bus.MeasureContention(n, betaM, int(l/d), interArrival, misses, o.seed())
		if err != nil {
			return nil, err
		}
		eff := cr.EffBetaM
		if eff < 1 {
			eff = 1
		}
		var dhr [3]float64
		for i, spec := range []core.FeatureSpec{
			{Feature: core.FeatureDoubleBus},
			{Feature: core.FeatureWriteBuffers},
			{Feature: core.FeaturePipelinedMemory, Q: 2},
		} {
			tr, err := core.FeatureTradeoff(spec, baseHR, alpha, l, d, eff)
			if err != nil {
				return nil, err
			}
			dhr[i] = 100 * tr.DeltaHR
		}
		crossed := "no"
		if x, err := core.PipelineCrossover(2, l, d); err == nil && eff >= x {
			crossed = "YES"
		}
		t.AddRowf(n, eff, cr.Utilization, dhr[0], dhr[1], dhr[2], crossed)
	}
	return []Artifact{{ID: "E25", Name: "contention", Title: t.Title, Table: &t}}, nil
}
