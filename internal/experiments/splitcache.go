package experiments

import (
	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/plot"
	"tradeoff/internal/trace"
)

// SplitCache (E22) exercises the §4.5 claim that the mean-memory-delay
// equivalence "can also be applied to an instruction cache or a
// unified cache": for each workload model it measures a split
// 8K-I + 8K-D organization against a 16K unified cache on the
// interleaved fetch+data stream, reports hit ratios and mean memory
// delay per reference, and prices the unified cache's hit-ratio
// difference with the same Eq. (6) machinery used for data caches.
func SplitCache(o Options) ([]Artifact, error) {
	const (
		l     = 32
		d     = 4.0
		betaM = 10.0
	)
	t := plot.Table{
		Title:   "Split (8K I + 8K D) vs unified (16K) caches on interleaved streams (L=32, FS, beta_m=10)",
		Columns: []string{"program", "I-hit", "D-hit", "split delay/ref", "unified hit", "unified delay/ref", "winner"},
	}
	refsPer := o.refsPerProgram()
	for pi, prog := range trace.Programs() {
		seed := o.seed() + uint64(pi)
		dataRefs := trace.Collect(trace.MustProgram(prog, seed), refsPer)

		// Split: run the two streams through their own caches.
		ic := cache.MustNew(cache.Config{Size: 8 << 10, LineSize: l, Assoc: 1})
		dc := cache.MustNew(cache.Config{Size: 8 << 10, LineSize: l, Assoc: 2})
		iRefs := trace.Collect(trace.IFetch(trace.IFetchConfig{Seed: seed + 99, Base: 0x8000_0000}), refsPer)
		ip := cache.Measure(ic, iRefs)
		dp := cache.Measure(dc, dataRefs)

		// Unified: one 16K cache sees the interleaved stream.
		uc := cache.MustNew(cache.Config{Size: 16 << 10, LineSize: l, Assoc: 2})
		unifiedStream := trace.Interleave(
			sliceSource(dataRefs),
			trace.IFetch(trace.IFetchConfig{Seed: seed + 99, Base: 0x8000_0000}),
		)
		var uHits, uTotal uint64
		for {
			r, ok := unifiedStream.Next()
			if !ok {
				break
			}
			if uc.Access(r.Addr, r.Write).Hit {
				uHits++
			}
			uTotal++
		}
		uHR := float64(uHits) / float64(uTotal)

		// Mean memory delay per reference (Eq. 15 form, full stalling):
		// hit = 1 cycle, miss = (L/D)·βm. Split delay averages the two
		// streams by their reference counts.
		miss := (float64(l) / d) * betaM
		delayOf := func(hr float64) float64 { return hr + (1-hr)*miss }
		splitDelay := (float64(len(iRefs))*delayOf(ip.HitRatio) + float64(len(dataRefs))*delayOf(dp.HitRatio)) /
			float64(len(iRefs)+len(dataRefs))
		uDelay := delayOf(uHR)
		winner := "split"
		if uDelay < splitDelay {
			winner = "unified"
		}
		t.AddRowf(prog, ip.HitRatio, dp.HitRatio, splitDelay, uHR, uDelay, winner)
	}

	// §4.5 applied to the unified cache: the same ΔHR machinery prices
	// bus doubling on the combined stream exactly as on a data stream.
	eq := plot.Table{
		Title:   "§4.5: Eq. (6) applied to a unified cache (bus doubling, alpha=0.3, L=32, D=4, beta_m=10)",
		Columns: []string{"base unified HR", "r", "delta HR", "equivalent HR"},
	}
	for _, hr := range []float64{0.95, 0.97, 0.99} {
		tr, err := core.FeatureTradeoff(core.FeatureSpec{Feature: core.FeatureDoubleBus}, hr, 0.3, l, d, betaM)
		if err != nil {
			return nil, err
		}
		eq.AddRowf(hr, tr.R, tr.DeltaHR, tr.NewHR)
	}
	return []Artifact{
		{ID: "E22", Name: "splitcache", Title: t.Title, Table: &t},
		{ID: "E22", Name: "splitcache_eq6", Title: eq.Title, Table: &eq},
	}, nil
}

// sliceSource adapts a collected trace back into a Source.
func sliceSource(refs []trace.Ref) trace.Source { return &sliceSrc{refs: refs} }

type sliceSrc struct {
	refs []trace.Ref
	i    int
}

func (s *sliceSrc) Next() (trace.Ref, bool) {
	if s.i >= len(s.refs) {
		return trace.Ref{}, false
	}
	r := s.refs[s.i]
	s.i++
	return r, true
}
