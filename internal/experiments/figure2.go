package experiments

import (
	"fmt"

	"tradeoff/internal/core"
	"tradeoff/internal/plot"
)

// fig2Betas is the βm sweep of Figure 2 (the design limit is βm = 2).
func fig2Betas(o Options) []float64 {
	if o.Fast {
		return []float64{2, 6, 12, 20}
	}
	betas := make([]float64, 0, 19)
	for b := 2.0; b <= 20; b++ {
		betas = append(betas, b)
	}
	return betas
}

// Figure2 reproduces Figure 2: the hit ratio traded by doubling the
// data bus from 32 to 64 bits, versus memory cycle time, for line sizes
// 8, 16 and 32 bytes, at base hit ratios 98% (upper panel) and 90%
// (lower panel). Full-stalling caches, α = α' = 0.5, D = 4 bytes.
func Figure2(o Options) ([]Artifact, error) {
	const alpha = 0.5
	var arts []Artifact
	for _, base := range []float64{0.98, 0.90} {
		chart := plot.Chart{
			Title: fmt.Sprintf(
				"Figure 2 (base HR %.0f%%): Hit Ratio Traded by Doubling the Bus (FS, alpha=0.5, D=4)", 100*base),
			XLabel: "memory cycle time per 4 bytes",
			YLabel: "hit ratio traded (%)",
		}
		for _, l := range []float64{32, 16, 8} {
			s := plot.Series{Name: fmt.Sprintf("L=%g", l)}
			for _, b := range fig2Betas(o) {
				tr, err := core.FeatureTradeoff(core.FeatureSpec{Feature: core.FeatureDoubleBus}, base, alpha, l, 4, b)
				if err != nil {
					return nil, fmt.Errorf("figure2: L=%g βm=%g: %w", l, b, err)
				}
				s.X = append(s.X, b)
				s.Y = append(s.Y, 100*tr.DeltaHR)
			}
			chart.Series = append(chart.Series, s)
		}
		name := fmt.Sprintf("figure2_hr%.0f", 100*base)
		arts = append(arts, Artifact{ID: "E4", Name: name, Title: chart.Title, Chart: &chart})
	}
	return arts, nil
}
