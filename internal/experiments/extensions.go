package experiments

import (
	"fmt"
	"math"

	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/memory"
	"tradeoff/internal/plot"
	"tradeoff/internal/stall"
	"tradeoff/internal/trace"
)

// The experiments below go beyond the paper's figures: the ablations
// DESIGN.md §7 calls out, the §6 future-work multi-issue model, and
// validations of the analytic model against the cycle-level engine.

// AblationAlpha (E13) sweeps the flush ratio α the unified comparisons
// fix at 0.5, showing how sensitive each feature's worth is to the
// dirty-line fraction: write buffers scale with α (they hide exactly
// the α term), bus doubling only partially, pipelining hardly at all.
func AblationAlpha(Options) ([]Artifact, error) {
	const (
		baseHR = 0.95
		l      = 32.0
		d      = 4.0
		betaM  = 10.0
	)
	chart := plot.Chart{
		Title:  "Ablation: hit ratio traded vs flush ratio alpha (L=32, D=4, beta_m=10, base HR 95%)",
		XLabel: "flush ratio alpha",
		YLabel: "hit ratio traded (%)",
	}
	specs := []core.FeatureSpec{
		{Feature: core.FeatureDoubleBus},
		{Feature: core.FeatureWriteBuffers},
		{Feature: core.FeaturePipelinedMemory, Q: 2},
	}
	for _, spec := range specs {
		s := plot.Series{Name: spec.Feature.String()}
		for alpha := 0.0; alpha <= 1.0001; alpha += 0.125 {
			tr, err := core.FeatureTradeoff(spec, baseHR, alpha, l, d, betaM)
			if err != nil {
				return nil, fmt.Errorf("ablation-alpha %v at α=%g: %w", spec.Feature, alpha, err)
			}
			s.X = append(s.X, alpha)
			s.Y = append(s.Y, 100*tr.DeltaHR)
		}
		chart.Series = append(chart.Series, s)
	}
	return []Artifact{{ID: "E13", Name: "ablation_alpha", Title: chart.Title, Chart: &chart}}, nil
}

// AblationQ (E14) sweeps the pipelined memory's readiness interval q,
// reporting both the hit ratio traded at a fixed βm and the crossover
// βm beyond which pipelining beats bus doubling.
func AblationQ(Options) ([]Artifact, error) {
	const (
		baseHR = 0.95
		alpha  = 0.5
		l      = 32.0
		d      = 4.0
	)
	t := plot.Table{
		Title:   "Ablation: pipelined memory vs readiness interval q (L=32, D=4, base HR 95%)",
		Columns: []string{"q", "dHR% at betaM=10", "dHR% at betaM=20", "crossover vs bus (betaM)"},
	}
	for _, q := range []float64{1, 2, 3, 4, 6, 8} {
		var dhr [2]float64
		for i, betaM := range []float64{10, 20} {
			tr, err := core.FeatureTradeoff(core.FeatureSpec{Feature: core.FeaturePipelinedMemory, Q: q}, baseHR, alpha, l, d, betaM)
			if err != nil {
				return nil, err
			}
			dhr[i] = 100 * tr.DeltaHR
		}
		x, err := core.PipelineCrossover(q, l, d)
		if err != nil {
			return nil, err
		}
		t.AddRowf(q, dhr[0], dhr[1], x)
	}
	return []Artifact{{ID: "E14", Name: "ablation_q", Title: t.Title, Table: &t}}, nil
}

// AblationFillOrder (E15) measures the BNL3 stalling factor under
// requested-word-first versus sequential chunk delivery — the design
// choice §3.2 implies but does not isolate. Sequential delivery makes
// the requested word arrive late for misses at the end of a line, so
// its φ must be at least as large.
func AblationFillOrder(o Options) ([]Artifact, error) {
	t := plot.Table{
		Title:   "Ablation: BNL3 stalling factor by fill order (8K 2-way, L=32, D=4, avg of six models)",
		Columns: []string{"betaM", "requested-first phi%", "sequential phi%", "penalty (points)"},
	}
	betas := []int64{2, 10, 30}
	if !o.Fast {
		betas = []int64{2, 5, 10, 15, 20, 30, 50}
	}
	for _, b := range betas {
		var frac [2]float64
		for i, order := range []memory.FillOrder{memory.RequestedFirst, memory.Sequential} {
			cfg := stall.Config{
				Cache:   fig1Cache(),
				Memory:  memory.Config{BetaM: b, BusWidth: 4, Order: order},
				Feature: stall.BNL3,
			}
			_, avg, err := averagePrograms(cfg, o.refsPerProgram(), o.seed(), o.Workers)
			if err != nil {
				return nil, err
			}
			frac[i] = 100 * avg.PhiFraction
		}
		t.AddRowf(b, frac[0], frac[1], frac[1]-frac[0])
	}
	return []Artifact{{ID: "E15", Name: "ablation_fillorder", Title: t.Title, Table: &t}}, nil
}

// WriteBufferDepth (E16) quantifies §4.3's "with an appropriate memory
// cycle time, the read-bypassing write buffers can completely hide the
// latency of cache flushes": the fraction of flush cycles hidden as a
// function of buffer depth and memory cycle time, measured by the
// cycle-level engine on the six workload models.
func WriteBufferDepth(o Options) ([]Artifact, error) {
	t := plot.Table{
		Title:   "Write buffers: write-stall cycles hidden vs no buffers (%), by depth and memory cycle time (32K 2-way, L=32, D=4)",
		Columns: []string{"betaM", "depth 1", "depth 2", "depth 4", "depth 8"},
	}
	betas := []int64{2, 20}
	if !o.Fast {
		betas = []int64{2, 3, 5, 10, 20}
	}
	// The paper's "completely hide" claim assumes bus idle time between
	// misses ("the processor will spend some time using the data on the
	// line just retrieved") — §4.3's "appropriate memory cycle time".
	// Use the Zipf general workload at 32K (≈96% hits): at small βm the
	// bus has idle time and hiding approaches 100%; at large βm the bus
	// saturates with fill + flush traffic and no depth can help — the
	// measured quantification of the paper's caveat.
	workload := trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
		Seed: o.seed(), Base: 0x1000_0000, Lines: 65536, Theta: 1.5, WriteFrac: 0.3,
	}), o.refsPerProgram())
	for _, b := range betas {
		cc := fig1Cache()
		cc.Size = 32 << 10
		base := stall.Config{
			Cache:   cc,
			Memory:  memory.Config{BetaM: b, BusWidth: 4},
			Feature: stall.BNL3,
		}
		unbuf, err := stall.Run(base, workload)
		if err != nil {
			return nil, err
		}
		exposedBase := unbuf.FlushStall + unbuf.WriteStall
		cells := []interface{}{b}
		for _, depth := range []int{1, 2, 4, 8} {
			cfg := base
			cfg.WriteBufferDepth = depth
			res, err := stall.Run(cfg, workload)
			if err != nil {
				return nil, err
			}
			// What the buffered run still exposes (full-buffer waits
			// and read conflicts) against the unbuffered write stall.
			hidden := 100.0
			if exposedBase > 0 {
				hidden = 100 * (1 - float64(res.BufferFull+res.Conflict)/float64(exposedBase))
			}
			cells = append(cells, hidden)
		}
		t.AddRowf(cells...)
	}
	return []Artifact{{ID: "E16", Name: "wbuf_depth", Title: t.Title, Table: &t}}, nil
}

// PipelinedSim (E17) validates Eq. (9) against the cycle-level engine:
// the measured per-miss fill stall of a full-stalling cache on a
// pipelined memory must equal βp = βm + q(L/D − 1) exactly, and the
// measured speedup must match the analytic ratio (L/D)βm / βp.
func PipelinedSim(o Options) ([]Artifact, error) {
	t := plot.Table{
		Title:   "Validation: measured pipelined fill stall vs Eq. (9) (FS, 8K 2-way, L=32, D=4, q=2)",
		Columns: []string{"betaM", "measured per-miss stall", "Eq.9 beta_p", "match", "measured speedup", "analytic speedup"},
	}
	betas := []int64{4, 10}
	if !o.Fast {
		betas = []int64{2, 4, 6, 10, 16, 20}
	}
	for _, b := range betas {
		pipe := stall.Config{
			Cache:   fig1Cache(),
			Memory:  memory.Config{BetaM: b, BusWidth: 4, Pipelined: true, Q: 2},
			Feature: stall.FS,
		}
		flat := pipe
		flat.Memory = memory.Config{BetaM: b, BusWidth: 4}
		_, avgP, err := averagePrograms(pipe, o.refsPerProgram(), o.seed(), o.Workers)
		if err != nil {
			return nil, err
		}
		_, avgF, err := averagePrograms(flat, o.refsPerProgram(), o.seed(), o.Workers)
		if err != nil {
			return nil, err
		}
		perMiss := float64(avgP.FillStall) / float64(avgP.Misses)
		bp := core.BetaP(float64(b), 2, 32, 4)
		match := "YES"
		if math.Abs(perMiss-bp) > 1e-9 {
			match = "NO"
		}
		measured := float64(avgF.FillStall) / float64(avgP.FillStall)
		analytic := 8 * float64(b) / bp
		t.AddRowf(b, perMiss, bp, match, measured, analytic)
	}
	return []Artifact{{ID: "E17", Name: "pipelined_sim", Title: t.Title, Table: &t}}, nil
}

// MultiIssue (E18) runs the paper's §6 future work: the unified
// comparison at issue widths 1, 2, 4 and 8. As issue width grows every
// feature's worth converges to its large-βm limit — memory delay
// dominates sooner, so hit ratio becomes uniformly more precious.
func MultiIssue(Options) ([]Artifact, error) {
	const (
		baseHR = 0.95
		alpha  = 0.5
		l      = 32.0
		d      = 4.0
		betaM  = 4.0 // small βm: where issue width matters most
	)
	t := plot.Table{
		Title:   "Extension (§6 future work): hit ratio traded vs issue width (L=32, D=4, beta_m=4, base HR 95%)",
		Columns: []string{"feature", "issue 1", "issue 2", "issue 4", "issue 8", "issue->inf limit"},
	}
	rows := []struct {
		spec  core.FeatureSpec
		limit float64
	}{
		{core.FeatureSpec{Feature: core.FeatureDoubleBus}, 0},
		{core.FeatureSpec{Feature: core.FeatureWriteBuffers}, 0},
		{core.FeatureSpec{Feature: core.FeaturePipelinedMemory, Q: 2}, 0},
	}
	for _, row := range rows {
		cells := []interface{}{row.spec.Feature.String()}
		for _, issue := range []float64{1, 2, 4, 8} {
			tr, err := core.MultiIssueTradeoff(row.spec, baseHR, alpha, l, d, betaM, issue)
			if err != nil {
				return nil, err
			}
			cells = append(cells, 100*tr.DeltaHR)
		}
		// The limit: issue → ∞ at the same βm — the hit cycle a miss
		// displaces vanishes entirely.
		rLim, err := core.MissRatioOfCachesMultiIssue(row.spec, alpha, l, d, betaM, 1e9)
		if err != nil {
			return nil, err
		}
		lim, err := core.DeltaHR(baseHR, rLim)
		if err != nil {
			return nil, err
		}
		cells = append(cells, 100*lim.DeltaHR)
		t.AddRowf(cells...)
	}
	return []Artifact{{ID: "E18", Name: "multiissue", Title: t.Title, Table: &t}}, nil
}

// WriteAround (E19) prices the features for a write-around cache
// (W > 0) measured by the simulator, against the write-allocate
// defaults — the Table 3 variant DESIGN.md §7 lists. Read-bypassing
// buffers gain the most: they hide the W·βm term too.
func WriteAround(o Options) ([]Artifact, error) {
	t := plot.Table{
		Title:   "Extension: Table 3 under write-around vs write-allocate (doduc model, 8K 2-way, D=4, beta_m=10)",
		Columns: []string{"feature", "r (write-allocate)", "r (write-around, measured W)", "buffers gain"},
	}
	// Measure a write-around profile.
	ccfg := fig1Cache()
	ccfg.WriteMiss = cache.WriteAround
	c, err := cache.New(ccfg)
	if err != nil {
		return nil, err
	}
	p := cache.MeasureSource(c, trace.MustProgram(trace.Doduc, o.seed()), o.refsPerProgram())
	around := core.WorkloadProfile{R: float64(p.R), W: float64(p.W), Alpha: p.Alpha, L: 32}
	alloc := around
	alloc.W = 0
	specs := []core.FeatureSpec{
		{Feature: core.FeatureDoubleBus},
		{Feature: core.FeatureWriteBuffers},
		{Feature: core.FeaturePipelinedMemory, Q: 2},
	}
	for _, spec := range specs {
		ra, err := core.MissRatioOfCachesProfile(spec, alloc, 4, 10)
		if err != nil {
			return nil, err
		}
		rw, err := core.MissRatioOfCachesProfile(spec, around, 4, 10)
		if err != nil {
			return nil, err
		}
		note := ""
		if spec.Feature == core.FeatureWriteBuffers && rw > ra {
			note = "YES (hides W*betaM too)"
		}
		t.AddRowf(spec.Feature.String(), ra, rw, note)
	}
	return []Artifact{{ID: "E19", Name: "writearound", Title: t.Title, Table: &t}}, nil
}
