package experiments

import (
	"strings"
	"testing"

	"tradeoff/internal/plot"
	"tradeoff/internal/stall"
)

func fast() Options { return Options{Fast: true} }

func runOne(t *testing.T, name string) []Artifact {
	t.Helper()
	arts, err := Run(name, fast())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(arts) == 0 {
		t.Fatalf("%s produced no artifacts", name)
	}
	for _, a := range arts {
		if a.ID == "" || a.Name == "" {
			t.Fatalf("%s artifact missing metadata: %+v", name, a)
		}
		if out := a.Render(); len(out) < 20 {
			t.Fatalf("%s artifact %s rendered suspiciously short output: %q", name, a.Name, out)
		}
	}
	return arts
}

func seriesByName(t *testing.T, c *plot.Chart, name string) plot.Series {
	t.Helper()
	for _, s := range c.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("chart %q has no series %q", c.Title, name)
	return plot.Series{}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 30 {
		t.Fatalf("registry has %d experiments, want 30 (E0-E29)", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %s", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", fast()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable2Content(t *testing.T) {
	arts := runOne(t, "table2")
	out := arts[0].Render()
	for _, f := range []string{"FS", "BL", "BNL", "NB", "L/D"} {
		if !strings.Contains(out, f) {
			t.Fatalf("table2 missing %q:\n%s", f, out)
		}
	}
}

func TestTable3RatiosOrdered(t *testing.T) {
	arts := runOne(t, "table3")
	tab := arts[0].Table
	if len(tab.Rows) != 4 {
		t.Fatalf("table3 has %d rows, want 4 features", len(tab.Rows))
	}
	// At the design limit (L=8, D=4, βm=2) the doubling-bus row's r
	// must be the §4.1 limit 2.5.
	if got := tab.Rows[0][2]; got != "2.500" {
		t.Fatalf("doubling-bus r at design limit = %s, want 2.500", got)
	}
}

func TestFigure1ShapeMatchesPaper(t *testing.T) {
	arts := runOne(t, "figure1")
	chart := arts[0].Chart
	if len(chart.Series) != 4 {
		t.Fatalf("figure1 has %d series, want BL, BNL1, BNL2, BNL3", len(chart.Series))
	}
	bl := seriesByName(t, chart, stall.BL.String())
	bnl3 := seriesByName(t, chart, stall.BNL3.String())
	for i := range bl.X {
		// All percentages live in (0, 100].
		for _, s := range chart.Series {
			if s.Y[i] <= 0 || s.Y[i] > 100+1e-9 {
				t.Fatalf("series %s has out-of-range %%: %v", s.Name, s.Y[i])
			}
		}
		// BNL3 must stall no more than BL at every memory cycle time.
		if bnl3.Y[i] > bl.Y[i]+1e-9 {
			t.Fatalf("BNL3 %.1f%% above BL %.1f%% at βm=%g", bnl3.Y[i], bl.Y[i], bl.X[i])
		}
	}
	// Paper: BNL3 yields a 20-30% reduction in read-miss latency of a
	// full-blocking cache for βm < 15 — i.e. the BNL3 percentage sits
	// well below 100% at small βm (we accept 60-90%).
	if y := bnl3.Y[0]; y < 40 || y > 95 {
		t.Fatalf("BNL3 at βm=%g is %.1f%%, outside the paper's qualitative band", bnl3.X[0], y)
	}
	// BL approaches full stalling (>85%) at the largest βm.
	if y := bl.Y[len(bl.Y)-1]; y < 85 {
		t.Fatalf("BL at βm=%g is %.1f%%, want near 100%%", bl.X[len(bl.X)-1], y)
	}
}

func TestFigure2MatchesHeadlineNumbers(t *testing.T) {
	arts := runOne(t, "figure2")
	if len(arts) != 2 {
		t.Fatalf("figure2 produced %d artifacts, want 2 panels", len(arts))
	}
	upper := arts[0].Chart // base 98%
	l32 := seriesByName(t, upper, "L=32")
	l8 := seriesByName(t, upper, "L=8")
	// §5.1: L=32, long memory cycle ⇒ about 2% traded.
	last := len(l32.Y) - 1
	if l32.Y[last] < 1.9 || l32.Y[last] > 2.6 {
		t.Fatalf("L=32 traded %.2f%% at βm=%g, want ≈2%%", l32.Y[last], l32.X[last])
	}
	// §5.1: L=8 at βm=2 ⇒ 3%.
	if l8.X[0] != 2 || l8.Y[0] < 2.9 || l8.Y[0] > 3.1 {
		t.Fatalf("L=8 at design limit traded %.2f%%, want 3%%", l8.Y[0])
	}
	// Larger lines trade less hit ratio at every βm (§5.1).
	for i := range l32.Y {
		if l32.Y[i] > l8.Y[i] {
			t.Fatalf("L=32 trades more than L=8 at βm=%g", l32.X[i])
		}
	}
}

func TestFigure3PipelineNeverBeatsBus(t *testing.T) {
	arts := runOne(t, "figure3")
	chart := arts[0].Chart
	pipe := seriesByName(t, chart, "pipelined mem")
	bus := seriesByName(t, chart, "doubling bus")
	wb := seriesByName(t, chart, "write buffers")
	bnl := seriesByName(t, chart, "BNL1")
	for i := range pipe.X {
		if pipe.Y[i] > bus.Y[i]+1e-9 {
			t.Fatalf("L=8: pipelined (%.2f%%) beat bus doubling (%.2f%%) at βm=%g — contradicts Figure 3",
				pipe.Y[i], bus.Y[i], pipe.X[i])
		}
		if wb.Y[i] > bus.Y[i] {
			t.Fatalf("write buffers above bus doubling at βm=%g", pipe.X[i])
		}
		if bnl.Y[i] > wb.Y[i] {
			t.Fatalf("BNL1 above write buffers at βm=%g", pipe.X[i])
		}
	}
	// Pipeline curve meets the axis at βm = q = 2.
	if pipe.X[0] == 2 && pipe.Y[0] > 1e-9 {
		t.Fatalf("pipelined curve at βm=2 is %.3f%%, want 0", pipe.Y[0])
	}
}

func TestFigure4PipelineCrossesBus(t *testing.T) {
	arts := runOne(t, "figure4")
	chart := arts[0].Chart
	pipe := seriesByName(t, chart, "pipelined mem")
	bus := seriesByName(t, chart, "doubling bus")
	// At βm=2 pipe is 0; at βm=20 pipe must be far above bus (L=32).
	if pipe.Y[0] > 1e-9 {
		t.Fatalf("pipelined at βm=2: %.3f%%, want 0", pipe.Y[0])
	}
	last := len(pipe.Y) - 1
	if pipe.Y[last] <= bus.Y[last] {
		t.Fatalf("L=32: pipelined (%.2f%%) did not overtake bus (%.2f%%) at βm=%g",
			pipe.Y[last], bus.Y[last], pipe.X[last])
	}
}

func TestFigure5BNL3AboveFigure4BNL1(t *testing.T) {
	f4 := runOne(t, "figure4")[0].Chart
	f5 := runOne(t, "figure5")[0].Chart
	bnl1 := seriesByName(t, f4, "BNL1")
	bnl3 := seriesByName(t, f5, "BNL3")
	// BNL3 stalls less, so it trades at least as much hit ratio as
	// BNL1 at small memory cycle times (§5.3: "BNL3 has a higher
	// performance improvement when the memory cycle time is small").
	if bnl3.Y[0]+1e-9 < bnl1.Y[0] {
		t.Fatalf("BNL3 (%.2f%%) below BNL1 (%.2f%%) at βm=%g", bnl3.Y[0], bnl1.Y[0], bnl3.X[0])
	}
}

func TestFigure6ValidationAllMatch(t *testing.T) {
	arts := runOne(t, "figure6")
	var checked int
	for _, a := range arts {
		if a.Table == nil {
			continue
		}
		for _, row := range a.Table.Rows {
			for i, col := range a.Table.Columns {
				if col == "match" && row[i] != "YES" {
					t.Fatalf("Eq. 19 and Smith disagreed: %v", row)
				}
				if col == "match" {
					checked++
				}
			}
		}
	}
	if checked < 8 {
		t.Fatalf("only %d validation rows checked", checked)
	}
}

func TestExample1Equivalences(t *testing.T) {
	arts := runOne(t, "example1")
	if len(arts) != 2 {
		t.Fatalf("example1 artifacts = %d, want Short&Levy + simulated", len(arts))
	}
	// The Short & Levy case must hold (within the paper's rounding).
	for _, row := range arts[0].Table.Rows {
		verdict := row[len(row)-1]
		if !strings.HasPrefix(verdict, "yes") {
			t.Fatalf("Short&Levy equivalence failed: %v", row)
		}
	}
	// The simulated sweep must find a finite equivalent cache size for
	// at least the smaller base sizes (the paper's "modest multiple").
	sim := arts[1].Table
	found := 0
	for _, row := range sim.Rows {
		if !strings.Contains(row[3], "beyond") {
			found++
		}
	}
	if found < 2 {
		t.Fatalf("simulated sweep found equivalent sizes for only %d bases:\n%s", found, sim.Render())
	}
}

func TestRankingConsistent(t *testing.T) {
	arts := runOne(t, "ranking")
	for _, row := range arts[0].Table.Rows {
		if row[len(row)-1] != "YES" {
			t.Fatalf("ranking inconsistent with §5.3: %v", row)
		}
	}
}

func TestCrossoverTable(t *testing.T) {
	arts := runOne(t, "crossover")
	out := arts[0].Render()
	if !strings.Contains(out, "+Inf") {
		t.Fatalf("crossover table missing the L=2D +Inf row:\n%s", out)
	}
	if !strings.Contains(out, "4.667") {
		t.Fatalf("crossover table missing the 14/3 point:\n%s", out)
	}
}

func TestLimitsTable(t *testing.T) {
	arts := runOne(t, "limits")
	out := arts[0].Render()
	if !strings.Contains(out, "2.5") {
		t.Fatalf("limits table missing r=2.5:\n%s", out)
	}
	if !strings.Contains(out, "0.875") {
		t.Fatalf("limits table missing HR2=0.875:\n%s", out)
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	arts, err := Run("all", fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) < 12 {
		t.Fatalf("all produced %d artifacts, want >= 12", len(arts))
	}
}

func TestArtifactSaveCSV(t *testing.T) {
	arts := runOne(t, "table2")
	path := t.TempDir() + "/a.csv"
	if err := arts[0].SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	empty := Artifact{ID: "X"}
	if err := empty.SaveCSV(path); err == nil {
		t.Fatal("empty artifact saved")
	}
	if empty.Render() == "" {
		t.Fatal("empty artifact rendered nothing")
	}
}
