package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("non-numeric cell %q", s)
	}
	return v
}

func TestAblationAlphaShape(t *testing.T) {
	arts := runOne(t, "ablation_alpha")
	chart := arts[0].Chart
	wb := seriesByName(t, chart, "read-bypassing write buffers")
	// Write buffers are worth nothing at α = 0 and grow monotonically.
	if wb.Y[0] != 0 {
		t.Fatalf("write buffers at α=0 trade %.3f%%, want 0", wb.Y[0])
	}
	for i := 1; i < len(wb.Y); i++ {
		if wb.Y[i] < wb.Y[i-1] {
			t.Fatalf("write-buffer worth fell at α=%g", wb.X[i])
		}
	}
	// Pipelining stays beneficial across α (its r ratio only weakly
	// depends on α).
	pipe := seriesByName(t, chart, "pipelined memory")
	for i := range pipe.Y {
		if pipe.Y[i] <= 0 {
			t.Fatalf("pipelined worth non-positive at α=%g", pipe.X[i])
		}
	}
}

func TestAblationQMonotone(t *testing.T) {
	arts := runOne(t, "ablation_q")
	tab := arts[0].Table
	var prevDHR, prevX float64 = 1e9, -1
	for _, row := range tab.Rows {
		dhr := cell(t, row[1])
		x := cell(t, row[3])
		// Larger q weakens pipelining (smaller ΔHR) and pushes the
		// crossover right.
		if dhr > prevDHR+1e-9 {
			t.Fatalf("ΔHR rose with q: %v", row)
		}
		if x < prevX {
			t.Fatalf("crossover fell with q: %v", row)
		}
		prevDHR, prevX = dhr, x
	}
}

func TestAblationFillOrderPenaltyNonNegative(t *testing.T) {
	arts := runOne(t, "ablation_fillorder")
	for _, row := range arts[0].Table.Rows {
		if cell(t, row[3]) < -0.5 { // small sampling tolerance
			t.Fatalf("sequential fill cheaper than requested-first: %v", row)
		}
	}
}

func TestWriteBufferDepthImproves(t *testing.T) {
	arts := runOne(t, "wbuf_depth")
	rows := arts[0].Table.Rows
	for _, row := range rows {
		d1, d8 := cell(t, row[1]), cell(t, row[4])
		if d8 < d1-1e-9 {
			t.Fatalf("depth 8 hides less than depth 1: %v", row)
		}
	}
	// §4.3's claim at an "appropriate memory cycle time": at the
	// smallest βm a depth-8 buffer hides (nearly) all flush latency.
	if d8 := cell(t, rows[0][4]); d8 < 95 {
		t.Fatalf("depth 8 at βm=%s hides only %.1f%%, want ≈100%%", rows[0][0], d8)
	}
	// The caveat: at the largest βm the bus saturates and hiding drops.
	first := cell(t, rows[0][4])
	last := cell(t, rows[len(rows)-1][4])
	if last >= first {
		t.Fatalf("hiding did not degrade with memory cycle time: %.1f%% -> %.1f%%", first, last)
	}
}

func TestPipelinedSimMatchesEq9(t *testing.T) {
	arts := runOne(t, "pipelined_sim")
	for _, row := range arts[0].Table.Rows {
		if row[3] != "YES" {
			t.Fatalf("Eq. 9 mismatch: %v", row)
		}
	}
}

func TestMultiIssueConvergence(t *testing.T) {
	arts := runOne(t, "multiissue")
	for _, row := range arts[0].Table.Rows {
		i1 := cell(t, row[1])
		i8 := cell(t, row[4])
		lim := cell(t, row[5])
		// Issue 8 must be closer to the large-βm limit than issue 1.
		if d1, d8 := abs(i1-lim), abs(i8-lim); d8 > d1+1e-9 {
			t.Fatalf("issue 8 not converging to limit: %v", row)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestWriteAroundBuffersGain(t *testing.T) {
	arts := runOne(t, "writearound")
	foundGain := false
	for _, row := range arts[0].Table.Rows {
		if strings.HasPrefix(row[0], "read-bypassing") {
			ra, rw := cell(t, row[1]), cell(t, row[2])
			if rw <= ra {
				t.Fatalf("buffers did not gain under write-around: %v", row)
			}
			foundGain = true
		}
	}
	if !foundGain {
		t.Fatal("no write-buffer row found")
	}
}

func TestPinAreaExchange(t *testing.T) {
	arts := runOne(t, "pinarea")
	tab := arts[0].Table
	found := 0
	var prevDelta float64
	for _, row := range tab.Rows {
		if strings.Contains(row[3], "beyond") {
			continue
		}
		found++
		delta := cell(t, row[4])
		if delta <= 0 {
			t.Fatalf("non-positive area delta: %v", row)
		}
		// §5.2: the area the bus replaces grows with the base cache.
		if delta < prevDelta {
			t.Fatalf("area delta fell with base size: %v", row)
		}
		prevDelta = delta
		if pins := cell(t, row[6]); pins != 32 {
			t.Fatalf("pins saved %v, want 32", pins)
		}
	}
	if found < 3 {
		t.Fatalf("only %d finite exchanges found:\n%s", found, tab.Render())
	}
}

func TestFigure1SpreadArtifact(t *testing.T) {
	arts := runOne(t, "figure1")
	if len(arts) != 2 {
		t.Fatalf("figure1 artifacts = %d, want chart + spread", len(arts))
	}
	tab := arts[1].Table
	for _, row := range tab.Rows {
		mean, min, max := cell(t, row[2]), cell(t, row[4]), cell(t, row[5])
		if !(min <= mean && mean <= max) {
			t.Fatalf("spread row inconsistent: %v", row)
		}
	}
}

func TestTrafficOptimaDiverge(t *testing.T) {
	arts := runOne(t, "traffic")
	if len(arts) != 2 {
		t.Fatalf("traffic artifacts = %d, want sweep + write-policy", len(arts))
	}
	tab := arts[0].Table
	var trafficOpt, delayOpt, hrOpt int
	for _, row := range tab.Rows {
		line := int(cell(t, row[0]))
		if row[4] == "<==" {
			trafficOpt = line
		}
		if row[5] == "<==" {
			delayOpt = line
		}
		if row[6] == "<==" {
			hrOpt = line
		}
	}
	if trafficOpt == 0 || delayOpt == 0 || hrOpt == 0 {
		t.Fatalf("optima not marked:\n%s", tab.Render())
	}
	// §2's point: the three objectives pick different designs. At
	// minimum the hit-ratio optimum (largest line) must differ from
	// the traffic optimum (smallest lines move fewest bytes).
	if trafficOpt == hrOpt {
		t.Fatalf("traffic optimum %d equals hit-ratio optimum — no divergence to show", trafficOpt)
	}
	// The write-policy table must show each policy winning somewhere.
	wp := arts[1].Table
	winners := map[string]bool{}
	for _, row := range wp.Rows {
		winners[row[3]] = true
	}
	if !winners["write-back"] || !winners["write-through"] {
		t.Fatalf("write-policy crossover missing:\n%s", wp.Render())
	}
}

func TestSplitCacheSanity(t *testing.T) {
	arts := runOne(t, "splitcache")
	if len(arts) != 2 {
		t.Fatalf("splitcache artifacts = %d, want comparison + Eq.6 table", len(arts))
	}
	for _, row := range arts[0].Table.Rows {
		iHit, dHit, uHit := cell(t, row[1]), cell(t, row[2]), cell(t, row[4])
		// §3.4: instruction streams hit very often.
		if iHit < 0.95 {
			t.Fatalf("%s: I-cache hit ratio %.3f too low", row[0], iHit)
		}
		// The unified hit ratio sits in the band the two streams span.
		lo, hi := dHit, iHit
		if lo > hi {
			lo, hi = hi, lo
		}
		if uHit < lo-0.05 || uHit > hi+0.05 {
			t.Fatalf("%s: unified hit %.3f outside [%.3f, %.3f]", row[0], uHit, lo, hi)
		}
		// Delays are consistent with their hit ratios.
		if sd, ud := cell(t, row[3]), cell(t, row[5]); sd <= 0 || ud <= 0 {
			t.Fatalf("%s: non-positive delays", row[0])
		}
	}
	// The Eq. (6) table prices the unified cache like any other.
	for _, row := range arts[1].Table.Rows {
		if d := cell(t, row[2]); d <= 0 {
			t.Fatalf("unified ΔHR %v not positive: %v", d, row)
		}
	}
}

func TestAssociativityOrdering(t *testing.T) {
	arts := runOne(t, "associativity")
	tab := arts[0].Table
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 1/2/4-way + victim", len(tab.Rows))
	}
	oneWay := cell(t, tab.Rows[0][1])
	twoWay := cell(t, tab.Rows[1][1])
	victim := cell(t, tab.Rows[3][1])
	if twoWay <= oneWay {
		t.Fatalf("2-way HR %.4f not above 1-way %.4f", twoWay, oneWay)
	}
	if victim <= oneWay {
		t.Fatalf("victim buffer HR %.4f not above 1-way %.4f", victim, oneWay)
	}
	// The victim buffer's area must be far below the 2-way delta-HR's
	// equivalent: here just check it is tiny in absolute rbe terms.
	if a := cell(t, tab.Rows[3][3]); a > 2000 {
		t.Fatalf("victim buffer area %.0f rbe implausibly large", a)
	}
}

func TestPrefetchExperiment(t *testing.T) {
	arts := runOne(t, "prefetch")
	if len(arts) != 2 {
		t.Fatalf("prefetch artifacts = %d, want measurement + model", len(arts))
	}
	cut := 0
	for _, row := range arts[0].Table.Rows {
		rRatio := cell(t, row[3])
		traffic := cell(t, row[6])
		if rRatio > 1.001 {
			t.Fatalf("prefetch increased demand misses: %v", row)
		}
		if rRatio < 0.9 {
			cut++
		}
		if traffic < 0.999 {
			t.Fatalf("prefetch reduced traffic, impossible: %v", row)
		}
	}
	if cut < 2 {
		t.Fatalf("prefetch cut misses >10%% on only %d programs:\n%s", cut, arts[0].Table.Render())
	}
	// The model table: speedup grows with the hidden fraction.
	var prev float64
	for _, row := range arts[1].Table.Rows {
		sp := cell(t, row[2])
		if sp < prev {
			t.Fatalf("speedup fell with hidden fraction: %v", row)
		}
		prev = sp
	}
}

func TestContentionShiftsRanking(t *testing.T) {
	arts := runOne(t, "contention")
	rows := arts[0].Table.Rows
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 processor counts", len(rows))
	}
	// Effective βm grows with processor count.
	var prevEff float64
	for _, row := range rows {
		eff := cell(t, row[1])
		if eff < prevEff-0.2 {
			t.Fatalf("effective βm fell: %v", row)
		}
		prevEff = eff
	}
	// Pipelined memory's worth grows monotonically while bus doubling's
	// shrinks toward its asymptote.
	firstBus, lastBus := cell(t, rows[0][3]), cell(t, rows[len(rows)-1][3])
	firstPipe, lastPipe := cell(t, rows[0][5]), cell(t, rows[len(rows)-1][5])
	if lastBus > firstBus+1e-9 {
		t.Fatalf("bus doubling worth grew under contention: %.2f -> %.2f", firstBus, lastBus)
	}
	if lastPipe <= firstPipe {
		t.Fatalf("pipelined worth did not grow under contention: %.2f -> %.2f", firstPipe, lastPipe)
	}
	// At 16 processors the crossover must have been passed.
	if rows[len(rows)-1][6] != "YES" {
		t.Fatalf("crossover not passed at 16 processors:\n%s", arts[0].Table.Render())
	}
}

func TestTwoLevelWorthGrowsWithL2(t *testing.T) {
	arts := runOne(t, "twolevel")
	rows := arts[0].Table.Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 L2 sizes", len(rows))
	}
	var prevWorth float64
	var prevDelay = 1e18
	for _, row := range rows {
		worth := cell(t, row[5])
		delay := cell(t, row[4])
		if worth < prevWorth-1e-6 {
			t.Fatalf("L2 worth fell with size: %v", row)
		}
		if delay > prevDelay+1e-9 {
			t.Fatalf("delay rose with L2 size: %v", row)
		}
		prevWorth, prevDelay = worth, delay
		if lhr := cell(t, row[2]); lhr <= 0.2 {
			t.Fatalf("L2 local hit ratio %.3f useless: %v", lhr, row)
		}
	}
}

func TestSectorThreeWayTradeoff(t *testing.T) {
	arts := runOne(t, "sector")
	rows := arts[0].Table.Rows
	if len(rows)%3 != 0 {
		t.Fatalf("rows = %d, want triples", len(rows))
	}
	for i := 0; i+2 < len(rows); i += 3 {
		smallTags, largeTags, sectTags := cell(t, rows[i][2]), cell(t, rows[i+1][2]), cell(t, rows[i+2][2])
		if sectTags != largeTags || sectTags >= smallTags {
			t.Fatalf("tag amortization wrong: %v / %v / %v", smallTags, largeTags, sectTags)
		}
		sectTraffic := cell(t, rows[i+2][4])
		largeTraffic := cell(t, rows[i+1][4])
		if sectTraffic > largeTraffic {
			t.Fatalf("sector traffic %.2f above 64B-line traffic %.2f", sectTraffic, largeTraffic)
		}
		sectHR := cell(t, rows[i+2][3])
		largeHR := cell(t, rows[i+1][3])
		if sectHR > largeHR+1e-9 {
			t.Fatalf("sector hit ratio %.4f above whole-line %.4f", sectHR, largeHR)
		}
	}
}

func TestEndToEndResidualSmall(t *testing.T) {
	arts := runOne(t, "endtoend")
	for _, row := range arts[0].Table.Rows {
		res := cell(t, row[5])
		// The engine should land within 15% of the predicted
		// equivalence despite discrete cache sizes and finite buffers.
		if res < -15 || res > 15 {
			t.Fatalf("end-to-end residual %.1f%% too large: %v", res, row)
		}
	}
}

func TestSeedSensitivitySmall(t *testing.T) {
	arts := runOne(t, "seeds")
	for _, row := range arts[0].Table.Rows {
		if spread := cell(t, row[4]); spread > 5 {
			t.Fatalf("seed spread %.2f points of L/D too large: %v", spread, row)
		}
	}
}

func TestTable1Complete(t *testing.T) {
	arts := runOne(t, "table1")
	out := arts[0].Render()
	for _, sym := range []string{"D", "L", "beta_m", "E", "R", "W", "alpha", "phi", "q"} {
		if !strings.Contains(out, sym) {
			t.Fatalf("table1 missing %q:\n%s", sym, out)
		}
	}
}
