package experiments

import (
	"fmt"
	"math"

	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/memory"
	"tradeoff/internal/plot"
	"tradeoff/internal/stall"
	"tradeoff/internal/trace"
)

// EndToEnd (E28) closes the loop on the methodology's central claim:
// the analytic equivalence — "a smaller cache plus the feature performs
// like a bigger cache without it" — is verified in the cycle-level
// engine, not just in the algebra.
//
// Protocol, per feature: measure the base system (32K cache, full
// stalling, no feature) in the engine; use Eq. (6) to predict the hit
// ratio HR₂ a feature-equipped system may drop to; pick the swept
// cache size whose measured hit ratio is closest to HR₂; run THAT
// system with the feature in the engine; compare total cycles. The
// residual is the end-to-end model error, including everything the
// algebra abstracts (finite buffers, fill timing, discrete sizes).
func EndToEnd(o Options) ([]Artifact, error) {
	const (
		l     = 32
		d     = 4
		betaM = 10
	)
	refs := trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
		Seed: o.seed(), Base: 0x1000_0000, Lines: 65536, Theta: 1.5, WriteFrac: 0.3,
	}), 2*o.refsPerProgram())
	warm, measured := refs[:len(refs)/2], refs[len(refs)/2:]

	// Measured hit ratios per size (warmed).
	sizes := []int{4 << 10, 8 << 10, 16 << 10, 32 << 10}
	hr := map[int]float64{}
	for _, sz := range sizes {
		c, err := cache.New(cache.Config{Size: sz, LineSize: l, Assoc: 2})
		if err != nil {
			return nil, err
		}
		for _, r := range warm {
			c.Access(r.Addr, r.Write)
		}
		c.ResetStats()
		hr[sz] = cache.Measure(c, measured).HitRatio
	}

	// Engine run helper: warmed cache, measured half replayed.
	runEngine := func(size int, feature stall.Feature, wbuf int, mem memory.Config) (int64, error) {
		cfg := stall.Config{
			Cache:            cache.Config{Size: size, LineSize: l, Assoc: 2},
			Memory:           mem,
			Feature:          feature,
			WriteBufferDepth: wbuf,
		}
		c, err := cache.New(cfg.Cache)
		if err != nil {
			return 0, err
		}
		for _, r := range warm {
			c.Access(r.Addr, r.Write)
		}
		c.ResetStats()
		res, err := stall.RunWarm(cfg, c, measured)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}

	const baseSize = 32 << 10
	nonPipe := memory.Config{BetaM: betaM, BusWidth: d}
	baseCycles, err := runEngine(baseSize, stall.FS, 0, nonPipe)
	if err != nil {
		return nil, err
	}

	t := plot.Table{
		Title: "End-to-end equivalence check (Zipf workload, base = 32K FS no-buffers, beta_m=10): " +
			"smaller cache + feature vs bigger cache, in the cycle engine",
		Columns: []string{"feature", "predicted HR2", "picked cache (HR)", "base cycles", "feature cycles", "residual %"},
	}

	check := func(name string, spec core.FeatureSpec, feature stall.Feature, wbuf int, mem memory.Config) error {
		tr, err := core.FeatureTradeoff(spec, hr[baseSize], 0.5, l, d, betaM)
		if err != nil {
			return err
		}
		// Pick the swept size with the hit ratio closest to HR2.
		pick, best := baseSize, math.Inf(1)
		for _, sz := range sizes {
			if diff := math.Abs(hr[sz] - tr.NewHR); diff < best {
				pick, best = sz, diff
			}
		}
		cyc, err := runEngine(pick, feature, wbuf, mem)
		if err != nil {
			return err
		}
		residual := 100 * (float64(cyc) - float64(baseCycles)) / float64(baseCycles)
		t.AddRowf(name, tr.NewHR, fmt.Sprintf("%dK (%.4f)", pick>>10, hr[pick]),
			baseCycles, cyc, residual)
		return nil
	}

	if err := check("write buffers", core.FeatureSpec{Feature: core.FeatureWriteBuffers},
		stall.FS, 16, nonPipe); err != nil {
		return nil, err
	}
	if err := check("pipelined memory (q=2)", core.FeatureSpec{Feature: core.FeaturePipelinedMemory, Q: 2},
		stall.FS, 0, memory.Config{BetaM: betaM, BusWidth: d, Pipelined: true, Q: 2}); err != nil {
		return nil, err
	}
	return []Artifact{{ID: "E28", Name: "endtoend", Title: t.Title, Table: &t}}, nil
}
