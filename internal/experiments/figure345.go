package experiments

import (
	"fmt"

	"tradeoff/internal/core"
	"tradeoff/internal/plot"
	"tradeoff/internal/stall"
)

// unifiedConfig describes one of the unified-comparison figures:
// Figure 3 (L=8, BNL1), Figure 4 (L=32, BNL1), Figure 5 (L=32, BNL3).
type unifiedConfig struct {
	id, name, figure string
	l                float64
	bnl              stall.Feature
}

// unifiedBetas is the βm sweep of Figures 3–5.
func unifiedBetas(o Options) []float64 {
	if o.Fast {
		return []float64{2, 6, 12, 20}
	}
	betas := make([]float64, 0, 19)
	for b := 2.0; b <= 20; b++ {
		betas = append(betas, b)
	}
	return betas
}

// unified produces one unified-comparison chart: the hit ratio traded
// by each feature versus the non-pipelined memory cycle time, on the
// common baseline of a full-blocking cache with base hit ratio 95%,
// 50% flushes, D = 4 and q = 2 (§5.3).
func unified(cfg unifiedConfig, o Options) ([]Artifact, error) {
	const (
		baseHR = 0.95
		alpha  = 0.5
		d      = 4.0
		q      = 2.0
	)
	betas := unifiedBetas(o)
	chart := plot.Chart{
		Title: fmt.Sprintf("%s: Architectural Tradeoff (50%% flushes, L=%g, D=4, q=2, base HR=95%%)",
			cfg.figure, cfg.l),
		XLabel: "non-pipelined memory cycle time per 4 bytes",
		YLabel: "hit ratio traded (%)",
	}

	curve := func(name string, spec func(betaM float64) (core.FeatureSpec, error)) error {
		s := plot.Series{Name: name}
		for _, b := range betas {
			sp, err := spec(b)
			if err != nil {
				return fmt.Errorf("%s at βm=%g: %w", name, b, err)
			}
			tr, err := core.FeatureTradeoff(sp, baseHR, alpha, cfg.l, d, b)
			if err != nil {
				return fmt.Errorf("%s at βm=%g: %w", name, b, err)
			}
			s.X = append(s.X, b)
			s.Y = append(s.Y, 100*tr.DeltaHR)
		}
		chart.Series = append(chart.Series, s)
		return nil
	}

	fixed := func(spec core.FeatureSpec) func(float64) (core.FeatureSpec, error) {
		return func(float64) (core.FeatureSpec, error) { return spec, nil }
	}
	if err := curve("pipelined mem", fixed(core.FeatureSpec{Feature: core.FeaturePipelinedMemory, Q: q})); err != nil {
		return nil, err
	}
	if err := curve("doubling bus", fixed(core.FeatureSpec{Feature: core.FeatureDoubleBus})); err != nil {
		return nil, err
	}
	if err := curve("write buffers", fixed(core.FeatureSpec{Feature: core.FeatureWriteBuffers})); err != nil {
		return nil, err
	}
	// The BNL curve uses the average stalling factor measured from the
	// simulations at each memory cycle time, like the paper.
	err := curve(cfg.bnl.String(), func(betaM float64) (core.FeatureSpec, error) {
		phi, err := MeasurePhi(cfg.bnl, int64(betaM), int(cfg.l), o)
		if err != nil {
			return core.FeatureSpec{}, err
		}
		// Clamp into Table 2's [1, L/D] bounds against sampling noise.
		if phi < 1 {
			phi = 1
		}
		if max := cfg.l / d; phi > max {
			phi = max
		}
		return core.FeatureSpec{Feature: core.FeaturePartialStall, Phi: phi}, nil
	})
	if err != nil {
		return nil, err
	}
	return []Artifact{{ID: cfg.id, Name: cfg.name, Title: chart.Title, Chart: &chart}}, nil
}

// Figure3 reproduces Figure 3: the unified tradeoff for L = 8 bytes
// with the BNL1 stalling feature.
func Figure3(o Options) ([]Artifact, error) {
	return unified(unifiedConfig{id: "E5", name: "figure3", figure: "Figure 3", l: 8, bnl: stall.BNL1}, o)
}

// Figure4 reproduces Figure 4: the unified tradeoff for L = 32 bytes
// with the BNL1 stalling feature.
func Figure4(o Options) ([]Artifact, error) {
	return unified(unifiedConfig{id: "E6", name: "figure4", figure: "Figure 4", l: 32, bnl: stall.BNL1}, o)
}

// Figure5 reproduces Figure 5: the unified tradeoff for L = 32 bytes
// with the BNL3 stalling feature.
func Figure5(o Options) ([]Artifact, error) {
	return unified(unifiedConfig{id: "E7", name: "figure5", figure: "Figure 5", l: 32, bnl: stall.BNL3}, o)
}
