package experiments

import (
	"fmt"

	"tradeoff/internal/cache"
	"tradeoff/internal/plot"
	"tradeoff/internal/trace"
)

// Sector (E27) measures the three-way structural tradeoff behind the
// Alpert & Flynn tag-amortization argument the paper cites ([6]):
// versus a conventional small-line cache and a conventional large-line
// cache of equal capacity, a sector cache (large sector, small
// sub-block) keeps the small cache's fill traffic and the large
// cache's tag count, paying with a hit ratio between the two (no
// spatial prefetch from whole-sector fills).
func Sector(o Options) ([]Artifact, error) {
	const (
		size = 8 << 10
		d    = 4
	)
	t := plot.Table{
		Title:   "Sector caches vs conventional (8K, swm256 + zipf workloads): tags / hit ratio / traffic per ref",
		Columns: []string{"workload", "organization", "tags", "hit ratio", "traffic B/ref"},
	}
	workloads := []struct {
		name string
		refs []trace.Ref
	}{
		{"swm256", trace.Collect(trace.MustProgram(trace.Swm256, o.seed()), o.refsPerProgram())},
		{"zipf", trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
			Seed: o.seed(), Base: 0x1000_0000, Lines: 65536, Theta: 1.5, WriteFrac: 0.3}), o.refsPerProgram())},
	}
	for _, w := range workloads {
		n := float64(len(w.refs))

		small := cache.MustNew(cache.Config{Size: size, LineSize: 8, Assoc: 2})
		large := cache.MustNew(cache.Config{Size: size, LineSize: 64, Assoc: 2})
		sect, err := cache.NewSector(size, 64, 8, 2)
		if err != nil {
			return nil, err
		}
		for _, r := range w.refs {
			small.Access(r.Addr, r.Write)
			large.Access(r.Addr, r.Write)
			sect.Access(r.Addr, r.Write)
		}
		t.AddRowf(w.name, "8B lines", size/8, small.Stats().HitRatio(),
			float64(small.Stats().Traffic(8, d))/n)
		t.AddRowf(w.name, "64B lines", size/64, large.Stats().HitRatio(),
			float64(large.Stats().Traffic(64, d))/n)
		t.AddRowf(w.name, "64B sector / 8B sub", sect.TagCount(), sect.Stats().HitRatio(),
			float64(sect.Stats().Traffic(8))/n)
	}
	// Sanity formatting guard: the table always has 3 rows per workload.
	if len(t.Rows) != 3*len(workloads) {
		return nil, fmt.Errorf("sector: %d rows", len(t.Rows))
	}
	return []Artifact{{ID: "E27", Name: "sector", Title: t.Title, Table: &t}}, nil
}
