package experiments

import (
	"math"

	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/plot"
	"tradeoff/internal/trace"
)

// Traffic (E21) quantifies §2's warning that "optimizing the design
// space around hit ratio or memory traffic may not produce a
// cost-effective system": across a line-size sweep, the line that
// minimizes bus traffic differs from the line that minimizes mean
// memory delay — and both differ from the hit-ratio optimum, which
// just wants the largest non-polluting line. A second table contrasts
// write-back and write-through traffic on reuse-heavy vs streaming
// workloads.
func Traffic(o Options) ([]Artifact, error) {
	const (
		size  = 8 << 10
		d     = 4
		betaM = 6.0
		c0    = 5.0 // fill latency constant for the delay metric
	)
	lines := []int{8, 16, 32, 64, 128}
	refs := trace.Collect(trace.MustProgram(trace.Hydro2D, o.seed()), o.refsPerProgram())

	t := plot.Table{
		Title:   "Traffic vs delay vs hit ratio across line sizes (hydro2d model, 8K 2-way, D=4)",
		Columns: []string{"line", "hit ratio", "traffic bytes/ref", "mean delay/ref", "traffic-optimal", "delay-optimal", "hitratio-optimal"},
	}
	type row struct {
		line    int
		hr      float64
		traffic float64
		delay   float64
	}
	var rows []row
	for _, ls := range lines {
		c, err := cache.New(cache.Config{Size: size, LineSize: ls, Assoc: 2})
		if err != nil {
			return nil, err
		}
		p := cache.Measure(c, refs)
		tr := float64(c.Stats().Traffic(ls, d)) / float64(p.Refs)
		delay := core.MeanDelayPerRef(p.HitRatio, c0, betaM, float64(ls), d)
		rows = append(rows, row{ls, p.HitRatio, tr, delay})
	}
	argmin := func(f func(row) float64) int {
		best, bestV := 0, math.Inf(1)
		for _, r := range rows {
			if v := f(r); v < bestV {
				best, bestV = r.line, v
			}
		}
		return best
	}
	trafficOpt := argmin(func(r row) float64 { return r.traffic })
	delayOpt := argmin(func(r row) float64 { return r.delay })
	hrOpt := argmin(func(r row) float64 { return -r.hr })
	for _, r := range rows {
		mark := func(opt int) string {
			if r.line == opt {
				return "<=="
			}
			return ""
		}
		t.AddRowf(r.line, r.hr, r.traffic, r.delay, mark(trafficOpt), mark(delayOpt), mark(hrOpt))
	}

	// Write-policy traffic comparison.
	wp := plot.Table{
		Title:   "Write-back vs write-through bus traffic (bytes/ref, L=32, D=4)",
		Columns: []string{"workload", "write-back", "write-through", "lower-traffic policy"},
	}
	workloads := []struct {
		name string
		refs []trace.Ref
		size int
	}{
		{"zipf high-reuse (32K)", trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
			Seed: o.seed(), Lines: 65536, Theta: 1.5, WriteFrac: 0.3}), o.refsPerProgram()), 32 << 10},
		{"swm256 streaming (8K)", trace.Collect(trace.MustProgram(trace.Swm256, o.seed()), o.refsPerProgram()), 8 << 10},
	}
	for _, w := range workloads {
		var per [2]float64
		for i, pol := range []cache.WritePolicy{cache.WriteBack, cache.WriteThrough} {
			c, err := cache.New(cache.Config{Size: w.size, LineSize: 32, Assoc: 2, Write: pol})
			if err != nil {
				return nil, err
			}
			p := cache.Measure(c, w.refs)
			per[i] = float64(c.Stats().Traffic(32, d)) / float64(p.Refs)
		}
		winner := "write-back"
		if per[1] < per[0] {
			winner = "write-through"
		}
		wp.AddRowf(w.name, per[0], per[1], winner)
	}

	return []Artifact{
		{ID: "E21", Name: "traffic", Title: t.Title, Table: &t},
		{ID: "E21", Name: "traffic_writepolicy", Title: wp.Title, Table: &wp},
	}, nil
}
