package experiments

import (
	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/plot"
	"tradeoff/internal/trace"
)

// Prefetch (E24) exercises §3.3's treatment of prefetching: "cache
// line prefetching ... can be used to hide or reduce the penalty of
// some read misses. In these cases R will represent the memory
// references whose miss penalty cannot be hidden." Next-line
// prefetch-on-miss shrinks the demand-miss stream R; the experiment
// measures the shrinkage per workload, prices it as a hit-ratio gain
// with Eq. (6)'s machinery, and reports the traffic the speculation
// costs — the classic coverage/accuracy/traffic triangle.
func Prefetch(o Options) ([]Artifact, error) {
	const (
		size  = 8 << 10
		line  = 32
		d     = 4.0
		betaM = 10.0
	)
	t := plot.Table{
		Title:   "Next-line prefetch (§3.3): demand-miss reduction, its hit-ratio value, and the traffic cost (8K 2-way, L=32)",
		Columns: []string{"program", "misses", "misses w/ prefetch", "R ratio", "equivalent dHR", "accuracy", "traffic ratio"},
	}
	for _, prog := range trace.Programs() {
		refs := trace.Collect(trace.MustProgram(prog, o.seed()), o.refsPerProgram())
		plain := cache.MustNew(cache.Config{Size: size, LineSize: line, Assoc: 2})
		pf := cache.MustNew(cache.Config{Size: size, LineSize: line, Assoc: 2, Prefetch: true})
		for _, r := range refs {
			plain.Access(r.Addr, r.Write)
			pf.Access(r.Addr, r.Write)
		}
		sp, spf := plain.Stats(), pf.Stats()
		rRatio := float64(spf.Misses()) / float64(sp.Misses())

		// Price the miss reduction: fewer misses at the same reference
		// count is a hit-ratio gain of ΔHR = (1 − rRatio)·MR.
		mr := sp.MissRatio()
		dhr := (1 - rRatio) * mr

		accuracy := 0.0
		if spf.PrefetchFills > 0 {
			accuracy = float64(spf.PrefetchHits) / float64(spf.PrefetchFills)
		}
		trafficRatio := float64(spf.Traffic(line, int(d))) / float64(sp.Traffic(line, int(d)))
		t.AddRowf(prog, sp.Misses(), spf.Misses(), rRatio, dhr, accuracy, trafficRatio)
	}

	// The analytic tie-in: a prefetcher that hides fraction h of the
	// misses is worth the same as scaling R by (1−h) in Eq. (2) — show
	// the equivalent feature pricing at a design point.
	eq := plot.Table{
		Title:   "Prefetch as an R scale-down: execution time of Eq. (2) with R' = (1-h)R (E=1e6, base MR 5%, L=32, D=4, betaM=10)",
		Columns: []string{"hidden fraction h", "exec time X", "speedup vs h=0"},
	}
	base := core.Params{E: 1e6, R: 0, W: 0, Alpha: 0.5, Phi: 8, D: d, L: line, BetaM: betaM}
	// 5% miss ratio over ~30% of instructions being refs → R/L misses.
	refsCount := 0.3 * base.E
	base.R = 0.05 * refsCount * line
	if err := base.Validate(); err != nil {
		return nil, err
	}
	x0 := core.ExecutionTime(base)
	for _, h := range []float64{0, 0.25, 0.5, 0.75} {
		p := base
		p.R = base.R * (1 - h)
		x := core.ExecutionTime(p)
		eq.AddRowf(h, x, x0/x)
	}
	return []Artifact{
		{ID: "E24", Name: "prefetch", Title: t.Title, Table: &t},
		{ID: "E24", Name: "prefetch_model", Title: eq.Title, Table: &eq},
	}, nil
}
