package experiments

import (
	"context"
	"fmt"

	"tradeoff/internal/cache"
	"tradeoff/internal/memory"
	"tradeoff/internal/plot"
	"tradeoff/internal/simjob"
	"tradeoff/internal/stall"
	"tradeoff/internal/stats"
	"tradeoff/internal/trace"
)

// fig1Cache is the cache design point of Figure 1: 8 Kbytes, two-way
// set associative, write-allocate, 32-byte lines.
func fig1Cache() cache.Config {
	return cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2, WriteMiss: cache.WriteAllocate, Replacement: cache.LRU}
}

// fig1Betas returns the memory-cycle sweep of Figure 1 (per 4 bytes).
func fig1Betas(o Options) []int64 {
	if o.Fast {
		return []int64{2, 10, 25, 50}
	}
	return []int64{2, 5, 10, 15, 20, 25, 30, 40, 50}
}

// MeasurePhi measures the average stalling factor φ for one feature at
// one memory cycle time across the six SPEC92-like programs, with the
// Figure 1 cache geometry at the given line size. It is reused by the
// unified-comparison figures, which plot the BNL curves with "the
// average stalling factor obtained from the simulations" (§5.3). The
// six replays run concurrently on the shared simjob pool.
func MeasurePhi(feature stall.Feature, betaM int64, lineSize int, o Options) (float64, error) {
	cc := fig1Cache()
	cc.LineSize = lineSize
	cfg := stall.Config{
		Cache:   cc,
		Memory:  memory.Config{BetaM: betaM, BusWidth: 4},
		Feature: feature,
	}
	_, avg, err := averagePrograms(cfg, o.refsPerProgram(), o.seed(), o.Workers)
	if err != nil {
		return 0, err
	}
	return avg.Phi, nil
}

// Figure1 reproduces Figure 1: the measured stalling factors of the
// BL, BNL1, BNL2 and BNL3 features as percentages of the full-stalling
// factor L/D, versus memory cycle time, averaged over the six SPEC92
// workload models. A companion table reports the per-program spread of
// each average — the workload-dependence the paper's single curve
// hides.
func Figure1(o Options) ([]Artifact, error) {
	betas := fig1Betas(o)
	features := stall.PartialFeatures()
	programs := trace.Programs()

	// One flat job list — feature outermost, βm, program innermost —
	// so every (feature, βm, program) replay of the figure runs
	// concurrently on the shared pool instead of serially per curve
	// point. Slot-indexed results come back in exactly this order.
	jobs := make([]simjob.Job, 0, len(features)*len(betas)*len(programs))
	for _, f := range features {
		for _, b := range betas {
			for _, name := range programs {
				jobs = append(jobs, simjob.Job{
					Trace: simjob.TraceSpec{Program: name, Seed: o.seed(), Refs: o.refsPerProgram()},
					Cfg: stall.Config{
						Cache:   fig1Cache(),
						Memory:  memory.Config{BetaM: b, BusWidth: 4},
						Feature: f,
					},
				})
			}
		}
	}
	results, err := simRunner.Run(context.Background(), jobs, simjob.Options{Workers: o.Workers})
	if err != nil {
		return nil, fmt.Errorf("figure1: %w", err)
	}

	chart := plot.Chart{
		Title:  "Figure 1: Stalling Factor (avg of six SPEC92 models, 8KB 2-way write-allocate, L=32, D=4)",
		XLabel: "memory cycle time per 4 bytes",
		YLabel: "stalling factor (% of L/D)",
	}
	spread := plot.Table{
		Title:   "Figure 1 per-program spread of the stalling factor (% of L/D)",
		Columns: []string{"feature", "betaM", "mean", "stddev", "min", "max"},
	}
	next := 0
	for _, f := range features {
		s := plot.Series{Name: f.String()}
		for _, b := range betas {
			per, avg := stall.AverageResults(programs, results[next:next+len(programs)])
			next += len(programs)
			s.X = append(s.X, float64(b))
			s.Y = append(s.Y, 100*avg.PhiFraction)
			// Summarize in program order, so the spread statistics are
			// bit-stable run to run (map iteration is not).
			fracs := make([]float64, 0, len(per))
			for _, name := range programs {
				fracs = append(fracs, 100*per[name].PhiFraction)
			}
			sum, err := stats.Summarize(fracs)
			if err != nil {
				return nil, err
			}
			spread.AddRowf(f.String(), b, sum.Mean, sum.StdDev, sum.Min, sum.Max)
		}
		chart.Series = append(chart.Series, s)
	}
	return []Artifact{
		{ID: "E3", Name: "figure1", Title: chart.Title, Chart: &chart},
		{ID: "E3", Name: "figure1_spread", Title: spread.Title, Table: &spread},
	}, nil
}
